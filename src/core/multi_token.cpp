#include "core/multi_token.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/event_queue.hpp"

namespace score::core {

SimResult MultiTokenSimulation::run(const MultiTokenConfig& config) {
  const std::size_t num_vms = tm_->num_vms();
  if (num_vms == 0) throw std::invalid_argument("MultiTokenSimulation: no VMs");
  const std::size_t tokens = std::max<std::size_t>(
      1, std::min(config.tokens, num_vms));
  const CostModel& model = engine_->cost_model();

  SimResult result;
  result.initial_cost = model.total_cost(*alloc_, *tm_);
  double cost = result.initial_cost;
  result.series.push_back({0.0, cost, 0});

  // Contiguous id partitions, sizes differing by at most one.
  std::vector<std::pair<VmId, VmId>> ranges;  // [first, last]
  {
    const std::size_t base = num_vms / tokens;
    const std::size_t extra = num_vms % tokens;
    VmId first = 0;
    for (std::size_t t = 0; t < tokens; ++t) {
      const auto size = static_cast<VmId>(base + (t < extra ? 1 : 0));
      ranges.emplace_back(first, static_cast<VmId>(first + size - 1));
      first += size;
    }
  }

  sim::EventQueue queue;
  struct TokenState {
    VmId cursor;
    bool done_pass = false;
  };
  std::vector<TokenState> state(tokens);
  for (std::size_t t = 0; t < tokens; ++t) state[t].cursor = ranges[t].first;

  std::size_t pass_holds = 0;
  std::size_t pass_migrations = 0;
  std::size_t tokens_done = 0;
  bool stopped = false;

  // One self-rescheduling event chain per token; a global pass barrier keeps
  // iteration accounting identical to the single-token case.
  std::vector<sim::EventFn> chains(tokens);
  auto start_pass = [&]() {
    tokens_done = 0;
    pass_holds = 0;
    pass_migrations = 0;
    for (std::size_t t = 0; t < tokens; ++t) {
      state[t].cursor = ranges[t].first;
      state[t].done_pass = false;
      queue.schedule_in(0.0, chains[t]);
    }
  };

  for (std::size_t t = 0; t < tokens; ++t) {
    chains[t] = [&, t]() {
      if (stopped || state[t].done_pass) return;
      const VmId holder = state[t].cursor;
      const Decision d = engine_->evaluate(*alloc_, *tm_, holder);
      double busy = config.token_hold_s;
      if (d.migrate) {
        const double bytes =
            alloc_->spec(holder).ram_mb * 1e6 * config.precopy_factor;
        busy += bytes * 8.0 / config.migration_bandwidth_bps +
                config.migration_overhead_s;
        model.apply_migration(*alloc_, *tm_, holder, d.target);
        cost -= d.delta;
        ++result.total_migrations;
        ++pass_migrations;
        result.series.push_back({queue.now() + busy, cost, result.total_migrations});
      }
      ++pass_holds;

      if (holder == ranges[t].second) {
        state[t].done_pass = true;
        if (++tokens_done == tokens) {
          IterationStats it;
          it.holds = pass_holds;
          it.migrations = pass_migrations;
          it.migrated_ratio = static_cast<double>(pass_migrations) /
                              static_cast<double>(pass_holds);
          it.cost_at_end = cost;
          it.time_at_end_s = queue.now() + busy;
          result.iterations.push_back(it);
          const bool stable = config.stop_when_stable && pass_migrations == 0;
          if (result.iterations.size() >= config.iterations || stable) {
            stopped = true;
            queue.schedule_in(busy, [] {});
            return;
          }
          queue.schedule_in(busy, start_pass);
        }
        return;
      }

      const VmId next = static_cast<VmId>(holder + 1);
      const int hops = model.topology().hop_count(alloc_->server_of(holder),
                                                  alloc_->server_of(next));
      state[t].cursor = next;
      queue.schedule_in(busy + config.token_pass_per_hop_s * hops, chains[t]);
    };
  }

  start_pass();
  queue.run();

  result.final_cost = cost;
  result.duration_s = queue.now();
  if (result.series.empty() || result.series.back().cost != cost) {
    result.series.push_back({result.duration_s, cost, result.total_migrations});
  }
  return result;
}

}  // namespace score::core

