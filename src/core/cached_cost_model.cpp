#include "core/cached_cost_model.hpp"

#include <cmath>
#include <stdexcept>

namespace score::core {

CachedCostModel::~CachedCostModel() { detach(); }

// Copies start unbound: a copy cannot inherit the source's observer
// registration, and an unregistered cache holding container pointers it will
// never hear about again is a lifetime hazard (it could not learn of the
// matrix's destruction). Bind the copy explicitly to use it incrementally.
CachedCostModel::CachedCostModel(const CachedCostModel& other)
    : CostModel(other) {}

CachedCostModel& CachedCostModel::operator=(const CachedCostModel& other) {
  if (this == &other) return *this;
  detach();
  CostModel::operator=(other);
  alloc_ = nullptr;
  tm_ = nullptr;
  alloc_version_ = 0;
  tm_version_ = 0;
  pending_rebuild_ = false;
  total_ = 0.0;
  vm_cost_.clear();
  rebuilds_ = 0;
  incremental_updates_ = 0;
  deltas_folded_ = 0;
  return *this;
}

void CachedCostModel::detach() {
  if (tm_) tm_->remove_observer(this);
}

void CachedCostModel::bind(const Allocation& alloc,
                           const traffic::TrafficMatrix& tm) {
  // Always rebuild, even when re-binding the already-bound pair: Allocation
  // assignment copies the version verbatim, so a re-snapshotted allocation
  // can collide with the cached version while holding different contents.
  // The streaming win comes from *staying* bound between deltas, not from
  // cheap rebinds.
  if (tm_ && tm_ != &tm) detach();
  tm.add_observer(this);  // idempotent
  alloc_ = &alloc;
  tm_ = &tm;
  pending_rebuild_ = false;
  rebuild();
}

void CachedCostModel::unbind() {
  detach();
  alloc_ = nullptr;
  tm_ = nullptr;
  pending_rebuild_ = false;
  vm_cost_.clear();
  total_ = 0.0;
}

void CachedCostModel::on_rate_change(traffic::VmId u, traffic::VmId v,
                                     double old_rate, double new_rate) {
  if (pending_rebuild_) return;  // already dirty; the next query rebuilds
  if (alloc_version_ != alloc_->version()) {
    // The allocation moved out-of-band since our last sync, so the level we
    // would fold with may be stale. Defer to a rebuild rather than guess.
    pending_rebuild_ = true;
    return;
  }
  // Both endpoints' pair cost changes by the same amount (the pair's cost
  // counts once in each endpoint's Eq. (1) sum and once in Eq. (2)).
  const int lvl = level(*alloc_, u, v);
  const double d = pair_cost(new_rate, lvl) - pair_cost(old_rate, lvl);
  vm_cost_[u] += d;
  vm_cost_[v] += d;
  total_ += d;
  tm_version_ = tm_->version();
  ++deltas_folded_;
  verify_cache();
}

void CachedCostModel::on_bulk_update() { pending_rebuild_ = true; }

void CachedCostModel::on_matrix_destroyed() {
  // The matrix deregisters us itself — just drop the binding.
  alloc_ = nullptr;
  tm_ = nullptr;
  pending_rebuild_ = false;
  vm_cost_.clear();
  total_ = 0.0;
}

void CachedCostModel::rebuild() const {
  // Accumulate the total in exactly CostModel::total_cost's iteration order
  // so a freshly bound cache is bit-identical to the brute-force value (the
  // bench trajectory compares checksums across runs).
  const std::size_t n = tm_->num_vms();
  vm_cost_.assign(n, 0.0);
  total_ = 0.0;
  for (VmId u = 0; u < n; ++u) {
    tm_->for_each_neighbor(u, [&](VmId v, double rate) {
      const double c = pair_cost(rate, level(*alloc_, u, v));
      vm_cost_[u] += c;
      if (u < v) total_ += c;
    });
  }
  alloc_version_ = alloc_->version();
  tm_version_ = tm_->version();
  pending_rebuild_ = false;
  ++rebuilds_;
}

void CachedCostModel::sync() const {
  if (pending_rebuild_ || alloc_version_ != alloc_->version() ||
      tm_version_ != tm_->version()) {
    rebuild();
  }
}

void CachedCostModel::verify_cache() const {
#ifdef SCORE_CHECK_CACHE
  const double brute = CostModel::total_cost(*alloc_, *tm_);
  if (std::abs(total_ - brute) > 1e-7 * (1.0 + std::abs(brute))) {
    throw std::logic_error("CachedCostModel: cached total " +
                           std::to_string(total_) +
                           " diverged from brute-force Eq. (2) total " +
                           std::to_string(brute));
  }
  for (VmId u = 0; u < vm_cost_.size(); ++u) {
    const double vm_brute = CostModel::vm_cost(*alloc_, *tm_, u);
    // Cancellation residue in an incrementally maintained sum scales with
    // the magnitudes folded through it (≈ the global total), not with the
    // current — possibly zero — per-VM value.
    const double tol =
        1e-7 * (1.0 + std::abs(vm_brute)) + 1e-9 * std::abs(total_);
    if (std::abs(vm_cost_[u] - vm_brute) > tol) {
      throw std::logic_error("CachedCostModel: cached vm_cost[" +
                             std::to_string(u) + "] " +
                             std::to_string(vm_cost_[u]) +
                             " diverged from brute-force Eq. (1) value " +
                             std::to_string(vm_brute));
    }
  }
#endif
}

double CachedCostModel::total_cost(const Allocation& alloc,
                                   const traffic::TrafficMatrix& tm) const {
  if (!bound_to(alloc, tm)) return CostModel::total_cost(alloc, tm);
  sync();
  verify_cache();
  return total_;
}

double CachedCostModel::vm_cost(const Allocation& alloc,
                                const traffic::TrafficMatrix& tm, VmId u) const {
  if (!bound_to(alloc, tm)) return CostModel::vm_cost(alloc, tm, u);
  sync();
  verify_cache();
  return vm_cost_.at(u);
}

void CachedCostModel::fold_move(const Allocation& alloc,
                                const traffic::TrafficMatrix& tm, VmId u,
                                ServerId source, ServerId target) const {
  // Lemma 3 as bookkeeping: only pairs incident to u change level. Peers'
  // servers are unaffected by u's move, so their levels can be read after
  // the migrate.
  const auto& topology_ref = topology();
  double diff = 0.0;
  tm.for_each_neighbor(u, [&](VmId z, double rate) {
    const ServerId zs = alloc.server_of(z);
    const double delta = pair_cost(rate, topology_ref.comm_level(zs, target)) -
                         pair_cost(rate, topology_ref.comm_level(zs, source));
    vm_cost_[z] += delta;
    diff += delta;
  });
  vm_cost_[u] += diff;
  total_ += diff;
  alloc_version_ = alloc.version();
  ++incremental_updates_;
  verify_cache();
}

void CachedCostModel::apply_migration(Allocation& alloc,
                                      const traffic::TrafficMatrix& tm, VmId u,
                                      ServerId target) const {
  if (!bound_to(alloc, tm)) {
    CostModel::apply_migration(alloc, tm, u, target);
    return;
  }
  sync();
  const ServerId source = alloc.server_of(u);
  alloc.migrate(u, target);  // throws on infeasible targets, cache untouched
  if (source == target) return;
  fold_move(alloc, tm, u, source, target);
}

void CachedCostModel::resync_migration(Allocation& alloc,
                                       const traffic::TrafficMatrix& tm, VmId u,
                                       ServerId target) const {
  if (!bound_to(alloc, tm)) {
    throw std::logic_error(
        "CachedCostModel::resync_migration: (alloc, tm) is not the bound pair");
  }
  sync();
  const ServerId source = alloc.server_of(u);
  alloc.migrate_unchecked(u, target);
  if (source == target) return;
  fold_move(alloc, tm, u, source, target);
}

}  // namespace score::core
