// Token-passing policies — paper §V-A.
//
// S-CORE serialises migration decisions with a token. The policy decides
// which VM receives the token next:
//
//  * RoundRobin — ascending VM id, wrapping (paper §V-A.1). The token's id
//    order is total because ids are unique (IPv4 addresses on Xen).
//  * HighestLevelFirst — Algorithm 1. The token carries an 8-bit "highest
//    communication level" l_v per VM, lazily gossiped: when VM u holds the
//    token it writes its own exact level and raises the entries of its
//    neighbours. The token then goes to the next VM (in cyclic id order) at
//    the holder's current level, falling back to lower levels, and restarts
//    from the highest-level lowest-id VM when nothing is found.
//
// Two additional policies from the companion technical report (TR-2013-338)
// are provided for the ablation study: Random (uniformly random permutation
// per iteration) and HighestTrafficFirst (heaviest-communicating VMs first).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/allocation.hpp"
#include "core/cost_model.hpp"
#include "util/rng.hpp"

namespace score::core {

class TokenPolicy {
 public:
  virtual ~TokenPolicy() = default;

  virtual std::string name() const = 0;

  /// Initialise policy state for `num_vms` VMs and return the first holder.
  virtual VmId start(std::size_t num_vms) = 0;

  /// Called while VM `holder` has the token, before the migration decision;
  /// lets the policy update its gossip state from holder-local information.
  virtual void observe(const CostModel& model, const Allocation& alloc,
                       const traffic::TrafficMatrix& tm, VmId holder) {
    (void)model;
    (void)alloc;
    (void)tm;
    (void)holder;
  }

  /// Next token holder after `holder` finished its decision.
  virtual VmId next(VmId holder) = 0;
};

/// Paper §V-A.1: ascending id order, wrapping at the end.
class RoundRobinPolicy final : public TokenPolicy {
 public:
  std::string name() const override { return "round-robin"; }
  VmId start(std::size_t num_vms) override;
  VmId next(VmId holder) override;

 private:
  std::size_t num_vms_ = 0;
};

/// Paper §V-A.2, Algorithm 1. VMs already holding the token in the current
/// round are "checked" (Algorithm 1 line 15) and skipped until the round
/// completes; the next round then restarts from the lowest-id VM among those
/// at the highest known level (line 16). This realises the per-round visited
/// semantics the algorithm's "unchecked VMs" wording implies — without it the
/// token would ping-pong between the two highest-level VMs.
class HighestLevelFirstPolicy final : public TokenPolicy {
 public:
  std::string name() const override { return "highest-level-first"; }
  VmId start(std::size_t num_vms) override;
  void observe(const CostModel& model, const Allocation& alloc,
               const traffic::TrafficMatrix& tm, VmId holder) override;
  VmId next(VmId holder) override;

  /// Token-carried level estimate l_v (for tests/inspection).
  std::uint8_t token_level(VmId v) const { return levels_.at(v); }

 private:
  std::vector<std::uint8_t> levels_;
  std::vector<bool> checked_;  ///< visited in the current round
  std::size_t checked_count_ = 0;
};

/// Ablation: uniformly random permutation, reshuffled every iteration.
class RandomPolicy final : public TokenPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed = 7) : rng_(seed) {}
  std::string name() const override { return "random"; }
  VmId start(std::size_t num_vms) override;
  VmId next(VmId holder) override;

 private:
  void reshuffle();

  util::Rng rng_;
  std::vector<VmId> order_;
  std::size_t pos_ = 0;
};

/// Ablation: VMs ordered by total traffic volume (descending), recomputed
/// from gossip observations each iteration. Heavy communicators move first.
class HighestTrafficFirstPolicy final : public TokenPolicy {
 public:
  std::string name() const override { return "highest-traffic-first"; }
  VmId start(std::size_t num_vms) override;
  void observe(const CostModel& model, const Allocation& alloc,
               const traffic::TrafficMatrix& tm, VmId holder) override;
  VmId next(VmId holder) override;

 private:
  void resort();

  std::vector<double> volume_;
  std::vector<VmId> order_;
  std::size_t pos_ = 0;
};

/// Factory by name ("round-robin", "hlf", "random", "htf").
std::unique_ptr<TokenPolicy> make_policy(const std::string& name,
                                         std::uint64_t seed = 7);

}  // namespace score::core
