#include "core/migration_engine.hpp"

#include <algorithm>
#include <tuple>

namespace score::core {

bool MigrationEngine::target_feasible(const Allocation& alloc, ServerId target,
                                      const VmSpec& spec) const {
  if (!alloc.can_host(target, spec)) return false;
  const double residual_net =
      alloc.capacity(target).net_bps - alloc.used_net_bps(target);
  return residual_net >= spec.net_bps + config_.bandwidth_headroom_bps;
}

std::vector<ServerId> MigrationEngine::candidate_servers(
    const Allocation& alloc, const traffic::TrafficMatrix& tm, VmId u) const {
  const ServerId source = alloc.server_of(u);
  const auto& topo = model_->topology();

  // Neighbours ranked by (level desc, traffic desc): the highest-level,
  // heaviest peers are probed first (§V-B.5).
  std::vector<std::tuple<int, double, ServerId>> ranked;
  ranked.reserve(tm.neighbors(u).size());
  tm.for_each_neighbor(u, [&](VmId z, double rate) {
    const ServerId zs = alloc.server_of(z);
    if (zs == source) return;  // already colocated
    ranked.emplace_back(topo.comm_level(source, zs), rate, zs);
  });
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) > std::get<0>(b);
    return std::get<1>(a) > std::get<1>(b);
  });

  std::vector<ServerId> candidates;
  auto push_unique = [&candidates, this](ServerId s) {
    if (candidates.size() >= config_.max_candidates) return;
    if (std::find(candidates.begin(), candidates.end(), s) == candidates.end()) {
      candidates.push_back(s);
    }
  };

  const std::size_t hosts_per_rack = topo.num_hosts() / topo.num_racks();
  for (const auto& [level, rate, zs] : ranked) {
    (void)level;
    (void)rate;
    push_unique(zs);
    if (config_.probe_rack_siblings) {
      const auto rack = static_cast<std::size_t>(topo.rack_of(zs));
      const auto first = static_cast<ServerId>(rack * hosts_per_rack);
      for (std::size_t i = 0; i < hosts_per_rack; ++i) {
        const auto sibling = static_cast<ServerId>(first + i);
        if (sibling != source) push_unique(sibling);
      }
    }
    if (candidates.size() >= config_.max_candidates) break;
  }
  return candidates;
}

Decision MigrationEngine::evaluate(const Allocation& alloc,
                                   const traffic::TrafficMatrix& tm, VmId u) const {
  Decision best;
  const VmSpec& spec = alloc.spec(u);
  for (ServerId target : candidate_servers(alloc, tm, u)) {
    ++best.candidates_probed;
    if (!target_feasible(alloc, target, spec)) continue;
    const double delta = model_->migration_delta(alloc, tm, u, target);
    if (best.target == kInvalidServer || delta > best.delta) {
      best.target = target;
      best.delta = delta;
    }
  }
  // Theorem 1: migrate iff the cost reduction exceeds the migration cost c_m.
  best.migrate = best.target != kInvalidServer && best.delta > config_.migration_cost;
  if (!best.migrate && best.target == kInvalidServer) best.delta = 0.0;
  return best;
}

Decision MigrationEngine::evaluate_and_apply(Allocation& alloc,
                                             const traffic::TrafficMatrix& tm,
                                             VmId u) const {
  Decision d = evaluate(alloc, tm, u);
  if (d.migrate) model_->apply_migration(alloc, tm, u, d.target);
  return d;
}

}  // namespace score::core
