#include "core/link_weights.hpp"

#include <cmath>

namespace score::core {

LinkWeights::LinkWeights(std::vector<double> weights) : weights_(std::move(weights)) {
  if (weights_.empty()) {
    throw std::invalid_argument("LinkWeights: need at least one level");
  }
  for (double w : weights_) {
    if (!(w > 0.0)) throw std::invalid_argument("LinkWeights: weights must be > 0");
  }
  prefix_.resize(weights_.size() + 1, 0.0);
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    prefix_[i + 1] = prefix_[i] + weights_[i];
  }
}

LinkWeights LinkWeights::exponential(int levels) {
  std::vector<double> w;
  for (int i = 0; i < levels; ++i) w.push_back(std::exp(static_cast<double>(i)));
  return LinkWeights(std::move(w));
}

LinkWeights LinkWeights::linear(int levels) {
  std::vector<double> w;
  for (int i = 1; i <= levels; ++i) w.push_back(static_cast<double>(i));
  return LinkWeights(std::move(w));
}

LinkWeights LinkWeights::uniform(int levels) {
  return LinkWeights(std::vector<double>(static_cast<std::size_t>(levels), 1.0));
}

double LinkWeights::weight(int level) const {
  if (level < 1 || level > levels()) {
    throw std::out_of_range("LinkWeights::weight: level out of range");
  }
  return weights_[static_cast<std::size_t>(level - 1)];
}

double LinkWeights::prefix(int level) const {
  if (level < 0 || level > levels()) {
    throw std::out_of_range("LinkWeights::prefix: level out of range");
  }
  return prefix_[static_cast<std::size_t>(level)];
}

}  // namespace score::core
