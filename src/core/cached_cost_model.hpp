// Incremental communication-cost cache — Lemma 3 applied to bookkeeping.
//
// CostModel::total_cost re-walks every communicating pair (O(|V|·degree))
// on each call, yet the paper's whole point is that migration effects are
// local: moving u only changes the levels of pairs incident to u, and a flow
// coming up or down only changes the cost of that one pair. This model binds
// to one (Allocation, TrafficMatrix) instance and maintains
//
//   * vm_cost_[u]  — C^A(u), Eq. (1), for every VM, and
//   * total_       — C^A,   Eq. (2),
//
// updating both in O(|Vu|) when a migration is routed through
// apply_migration and in O(1) when a traffic delta arrives through the
// TrafficObserver seam, so total_cost on the bound pair is O(1).
//
// Coherence contract (see ARCHITECTURE.md, "Incremental cost cache"):
//   * Migrations committed through apply_migration are folded incrementally.
//   * Traffic mutations on the bound matrix (TrafficMatrix::apply and the
//     legacy set/add/scale, which share one choke point) arrive as
//     on_rate_change callbacks — bind() registers the cache as an observer —
//     and are folded in O(1): ΔC = 2·(λ' − λ)·prefix(ℓ(u,v)) on vm_cost_[u],
//     vm_cost_[v] and total_.
//   * The version counters on both containers remain the fallback and
//     cross-check path: a cache that missed the notifications (an
//     unregistered copy, a bulk update such as wholesale assignment, or an
//     out-of-band Allocation mutation) detects the counter move on the next
//     query and rebuilds from scratch instead of serving stale data.
//     Correctness never depends on the observer seam — only speed does.
//   * Queries about a *different* allocation or TM (GA populations, exact-
//     solver probes, copied allocations) fall back to the brute-force base.
//   * Not thread-safe: one cache per driver/token-shard (the bound state is
//     mutated from const methods and from observer callbacks, which run on
//     the thread mutating the matrix). Registration itself is thread-safe
//     (parallel shard binds), mutation/notification is not.
//
// Configure with -DSCORE_CHECK_CACHE=ON to cross-verify the cached total
// against brute-force Eq. (2) after every incremental update — migration
// folds and delta folds alike — and on every cached read; divergence beyond
// 1e-7 relative throws std::logic_error.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cost_model.hpp"
#include "traffic/flow_delta.hpp"

namespace score::core {

class CachedCostModel final : public CostModel, public traffic::TrafficObserver {
 public:
  CachedCostModel(const topo::Topology& topology, LinkWeights weights)
      : CostModel(topology, std::move(weights)) {}

  /// Deregisters from the bound matrix (the matrix must still be alive —
  /// rebind or unbind before destroying the bound containers).
  ~CachedCostModel() override;

  /// Copies start UNBOUND (model parameters only): observer registration is
  /// per-object, so a copy could never keep inherited sums current. Bind the
  /// copy explicitly to use it incrementally.
  CachedCostModel(const CachedCostModel& other);
  CachedCostModel& operator=(const CachedCostModel& other);

  /// Bind to an allocation/TM pair, register as the matrix's observer and
  /// build the sums (always a full rebuild — re-snapshotted allocations can
  /// alias a stale version). Both containers must outlive the binding;
  /// rebind or unbind before destroying them.
  void bind(const Allocation& alloc, const traffic::TrafficMatrix& tm);
  void unbind();
  bool bound() const { return alloc_ != nullptr; }
  bool bound_to(const Allocation& alloc, const traffic::TrafficMatrix& tm) const {
    return alloc_ == &alloc && tm_ == &tm;
  }

  /// O(1) on the bound pair (after resyncing if a version counter moved);
  /// brute-force fallback otherwise.
  double total_cost(const Allocation& alloc,
                    const traffic::TrafficMatrix& tm) const override;

  /// O(1) on the bound pair; brute-force fallback otherwise.
  double vm_cost(const Allocation& alloc, const traffic::TrafficMatrix& tm,
                 VmId u) const override;

  /// Commits the migration and folds it into the sums in O(|Vu|).
  void apply_migration(Allocation& alloc, const traffic::TrafficMatrix& tm,
                       VmId u, ServerId target) const override;

  /// apply_migration for snapshot resync: folds a move that replays another
  /// replica's already-validated decision, so the capacity check is skipped
  /// (Allocation::migrate_unchecked) — intermediate resync states may
  /// transiently overcommit; only the final state (== the master being
  /// resynced toward) must be valid. Requires the (alloc, tm) pair to be the
  /// bound pair; throws std::logic_error otherwise.
  void resync_migration(Allocation& alloc, const traffic::TrafficMatrix& tm,
                        VmId u, ServerId target) const;

  /// TrafficObserver: O(1) fold of one pair's rate change on the bound
  /// matrix. Public only because TrafficMatrix invokes it; not for callers.
  void on_rate_change(traffic::VmId u, traffic::VmId v, double old_rate,
                      double new_rate) override;
  void on_bulk_update() override;
  void on_matrix_destroyed() override;

  /// Cache-effectiveness counters (bench/diagnostics).
  std::uint64_t rebuilds() const { return rebuilds_; }
  std::uint64_t incremental_updates() const { return incremental_updates_; }
  /// Traffic deltas folded through the observer seam without a rebuild.
  std::uint64_t deltas_folded() const { return deltas_folded_; }

 private:
  /// Shared Lemma-3 fold of a committed move of u (source → target) into
  /// vm_cost_/total_, plus the version/counter/verify bookkeeping.
  void fold_move(const Allocation& alloc, const traffic::TrafficMatrix& tm,
                 VmId u, ServerId source, ServerId target) const;
  void rebuild() const;
  void sync() const;         ///< rebuild iff dirty or a version counter moved
  void verify_cache() const; ///< no-op unless SCORE_CHECK_CACHE
  void detach();             ///< deregister from the bound matrix, if any

  mutable const Allocation* alloc_ = nullptr;
  mutable const traffic::TrafficMatrix* tm_ = nullptr;
  mutable std::uint64_t alloc_version_ = 0;
  mutable std::uint64_t tm_version_ = 0;
  /// Set by bulk updates (and by deltas arriving while the allocation is
  /// already stale): the next query rebuilds regardless of the counters.
  mutable bool pending_rebuild_ = false;
  mutable double total_ = 0.0;
  mutable std::vector<double> vm_cost_;
  mutable std::uint64_t rebuilds_ = 0;
  mutable std::uint64_t incremental_updates_ = 0;
  mutable std::uint64_t deltas_folded_ = 0;
};

}  // namespace score::core
