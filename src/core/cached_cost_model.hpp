// Incremental communication-cost cache — Lemma 3 applied to bookkeeping.
//
// CostModel::total_cost re-walks every communicating pair (O(|V|·degree))
// on each call, yet the paper's whole point is that migration effects are
// local: moving u only changes the levels of pairs incident to u. This model
// binds to one (Allocation, TrafficMatrix) instance and maintains
//
//   * vm_cost_[u]  — C^A(u), Eq. (1), for every VM, and
//   * total_       — C^A,   Eq. (2),
//
// updating both in O(|Vu|) when a migration is routed through
// apply_migration, so total_cost on the bound pair is O(1).
//
// Coherence contract (see ARCHITECTURE.md, "Incremental cost cache"):
//   * Migrations committed through apply_migration are folded incrementally.
//   * Out-of-band mutations (Allocation::migrate / add_vm called directly,
//     TrafficMatrix set/add/scale) are detected via the version counters on
//     both containers; the next query rebuilds the sums from scratch instead
//     of serving stale data. Correctness never depends on callers remembering
//     to route through the cache — only speed does.
//   * Queries about a *different* allocation or TM (GA populations, exact-
//     solver probes, copied allocations) fall back to the brute-force base.
//   * Not thread-safe: one cache per driver/token-shard (the bound state is
//     mutated from const methods).
//
// Configure with -DSCORE_CHECK_CACHE=ON to cross-verify the cached total
// against brute-force Eq. (2) after every incremental update and on every
// cached read; divergence beyond 1e-7 relative throws std::logic_error.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cost_model.hpp"

namespace score::core {

class CachedCostModel final : public CostModel {
 public:
  CachedCostModel(const topo::Topology& topology, LinkWeights weights)
      : CostModel(topology, std::move(weights)) {}

  /// Bind to an allocation/TM pair and build the sums (O(pairs) once).
  /// Both must outlive the binding; rebind or unbind before destroying them.
  void bind(const Allocation& alloc, const traffic::TrafficMatrix& tm);
  void unbind();
  bool bound() const { return alloc_ != nullptr; }
  bool bound_to(const Allocation& alloc, const traffic::TrafficMatrix& tm) const {
    return alloc_ == &alloc && tm_ == &tm;
  }

  /// O(1) on the bound pair (after resyncing if a version counter moved);
  /// brute-force fallback otherwise.
  double total_cost(const Allocation& alloc,
                    const traffic::TrafficMatrix& tm) const override;

  /// O(1) on the bound pair; brute-force fallback otherwise.
  double vm_cost(const Allocation& alloc, const traffic::TrafficMatrix& tm,
                 VmId u) const override;

  /// Commits the migration and folds it into the sums in O(|Vu|).
  void apply_migration(Allocation& alloc, const traffic::TrafficMatrix& tm,
                       VmId u, ServerId target) const override;

  /// Cache-effectiveness counters (bench/diagnostics).
  std::uint64_t rebuilds() const { return rebuilds_; }
  std::uint64_t incremental_updates() const { return incremental_updates_; }

 private:
  void rebuild() const;
  void sync() const;         ///< rebuild iff a version counter moved
  void verify_cache() const; ///< no-op unless SCORE_CHECK_CACHE

  mutable const Allocation* alloc_ = nullptr;
  mutable const traffic::TrafficMatrix* tm_ = nullptr;
  mutable std::uint64_t alloc_version_ = 0;
  mutable std::uint64_t tm_version_ = 0;
  mutable double total_ = 0.0;
  mutable std::vector<double> vm_cost_;
  mutable std::uint64_t rebuilds_ = 0;
  mutable std::uint64_t incremental_updates_ = 0;
};

}  // namespace score::core
