// Scenario serialization: save/load a (server capacities, VM placement,
// traffic matrix) snapshot as a plain-text, line-oriented format.
//
// Lets users capture the exact state an experiment ran on — e.g. dump a
// generated workload once and replay it across S-CORE / GA / Remedy runs or
// share it as a repro case. The format is versioned and strictly validated
// on load (counts, ranges, capacity feasibility via Allocation's own
// checks).
//
//   score-scenario v1
//   servers <n>
//   <vm_slots> <ram_mb> <cpu_cores> <net_bps>          x n
//   vms <m>
//   <server> <ram_mb> <cpu_cores> <net_bps>            x m
//   pairs <p>
//   <u> <v> <rate>                                     x p
#pragma once

#include <iosfwd>
#include <utility>

#include "core/allocation.hpp"
#include "traffic/traffic_matrix.hpp"

namespace score::core {

struct Scenario {
  Allocation allocation;
  traffic::TrafficMatrix tm;
};

/// Write the snapshot. The stream's formatting state is not preserved.
void save_scenario(std::ostream& out, const Allocation& alloc,
                   const traffic::TrafficMatrix& tm);

/// Parse a snapshot; throws std::runtime_error with a line-context message on
/// any malformed input (bad magic, counts, ids, or infeasible placements).
Scenario load_scenario(std::istream& in);

}  // namespace score::core
