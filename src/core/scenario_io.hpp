// Scenario serialization: save/load a (server capacities, VM placement,
// traffic matrix) snapshot as a plain-text, line-oriented format.
//
// Lets users capture the exact state an experiment ran on — e.g. dump a
// generated workload once and replay it across S-CORE / GA / Remedy runs or
// share it as a repro case. The format is versioned and strictly validated
// on load (counts, ranges, capacity feasibility via Allocation's own
// checks).
//
//   score-scenario v1
//   servers <n>
//   <vm_slots> <ram_mb> <cpu_cores> <net_bps>          x n
//   vms <m>
//   <server> <ram_mb> <cpu_cores> <net_bps>            x m
//   pairs <p>
//   <u> <v> <rate>                                     x p
//
// v2 extends v1 to *continuous-operation* runs (driver/continuous): the VM
// section describes the whole world — dormant VMs carry `-` instead of a
// server id — and a trailing `events` section records the realized lifecycle
// timeline (tenant arrivals / departures per traffic epoch), so any
// continuous run can be dumped and byte-identically replayed:
//
//   score-scenario v2
//   servers <n>
//   <vm_slots> <ram_mb> <cpu_cores> <net_bps>          x n
//   vms <m>
//   <server|-> <ram_mb> <cpu_cores> <net_bps>          x m
//   pairs <p>
//   <u> <v> <rate>                                     x p
//   events <e>
//   <epoch> arrive|depart <first_vm> <count>           x e
//
// Event validation replays the timeline against the epoch-0 active set: an
// `arrive` block must be entirely dormant at that point, a `depart` block
// entirely active, epochs must be >= 1 and non-decreasing, within one epoch
// every `depart` must precede the first `arrive` (the canonical order the
// engine applies and emits), and every id must be in range — violations
// throw with the offending line's context.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <utility>
#include <vector>

#include "core/allocation.hpp"
#include "traffic/traffic_matrix.hpp"

namespace score::core {

struct Scenario {
  Allocation allocation;
  traffic::TrafficMatrix tm;
};

/// Write the snapshot. The stream's formatting state is not preserved.
void save_scenario(std::ostream& out, const Allocation& alloc,
                   const traffic::TrafficMatrix& tm);

/// Parse a snapshot; throws std::runtime_error with a line-context message on
/// any malformed input (bad magic, counts, ids, or infeasible placements).
Scenario load_scenario(std::istream& in);

// ---------------------------------------------------------------------------
// v2: world scenarios with a lifecycle timeline (continuous operation).
// ---------------------------------------------------------------------------

enum class TimelineEventKind : std::uint8_t { kArrive, kDepart };

/// One tenant lifecycle event: the VM block [first_vm, first_vm + count)
/// arrives (is placed and starts exchanging traffic) or departs (frees its
/// slots) at the start of traffic epoch `epoch`.
struct TimelineEvent {
  std::size_t epoch = 0;
  TimelineEventKind kind = TimelineEventKind::kArrive;
  VmId first_vm = 0;
  std::uint32_t count = 0;

  bool operator==(const TimelineEvent&) const = default;
};

/// A continuous-operation world: every VM that can ever exist, its epoch-0
/// placement (kInvalidServer = dormant), the epoch-0 world traffic matrix and
/// the realized lifecycle timeline. Pure data — the continuous engine
/// produces one from a run (export) and consumes one for replay.
struct WorldScenario {
  std::vector<ServerCapacity> servers;
  std::vector<VmSpec> vm_specs;
  /// Per-world-VM epoch-0 server; kInvalidServer marks a dormant VM.
  std::vector<ServerId> placement;
  traffic::TrafficMatrix tm{1};
  std::vector<TimelineEvent> timeline;

  std::size_t num_vms() const { return vm_specs.size(); }
  std::size_t num_active() const;
};

/// Write the world snapshot in canonical v2 form: save -> load -> save is
/// byte-identical. The stream's formatting state is not preserved.
void save_scenario_v2(std::ostream& out, const WorldScenario& world);

/// Parse a v2 snapshot; throws std::runtime_error with a line-context message
/// on any malformed input (bad magic, counts, ids, infeasible placements, or
/// an inconsistent event timeline).
WorldScenario load_scenario_v2(std::istream& in);

}  // namespace score::core
