#include "core/metrics.hpp"

#include <algorithm>
#include <utility>

namespace score::core {

namespace {
// splitmix64 finaliser — same construction as baselines::pair_flow_hash but
// kept dependency-free here (core must not depend on baselines).
std::uint64_t mix_pair(std::uint32_t u, std::uint32_t v) {
  if (u > v) std::swap(u, v);
  std::uint64_t h = (static_cast<std::uint64_t>(u) << 32) | v;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}
}  // namespace

std::vector<std::vector<double>> tor_level_matrix(const topo::Topology& topology,
                                                  const Allocation& alloc,
                                                  const traffic::TrafficMatrix& tm) {
  const std::size_t racks = topology.num_racks();
  std::vector<std::vector<double>> matrix(racks, std::vector<double>(racks, 0.0));
  for (const auto& [u, v, rate] : tm.pairs()) {
    const int ru = topology.rack_of(alloc.server_of(u));
    const int rv = topology.rack_of(alloc.server_of(v));
    if (ru == rv) continue;  // intra-rack traffic never crosses the ToR uplink
    matrix[static_cast<std::size_t>(ru)][static_cast<std::size_t>(rv)] += rate;
    matrix[static_cast<std::size_t>(rv)][static_cast<std::size_t>(ru)] += rate;
  }
  return matrix;
}

double tor_matrix_peak(const std::vector<std::vector<double>>& matrix) {
  double peak = 0.0;
  for (const auto& row : matrix) {
    for (double v : row) peak = std::max(peak, v);
  }
  return peak;
}

double tor_matrix_fill(const std::vector<std::vector<double>>& matrix) {
  if (matrix.empty()) return 0.0;
  std::size_t nonzero = 0, total = 0;
  for (std::size_t r = 0; r < matrix.size(); ++r) {
    for (std::size_t s = 0; s < matrix.size(); ++s) {
      if (r == s) continue;
      ++total;
      if (matrix[r][s] > 0.0) ++nonzero;
    }
  }
  return total ? static_cast<double>(nonzero) / static_cast<double>(total) : 0.0;
}

topo::LinkLoadMap link_loads_for(const topo::Topology& topology,
                                 const Allocation& alloc,
                                 const traffic::TrafficMatrix& tm) {
  topo::LinkLoadMap loads(topology);
  for (const auto& [u, v, rate] : tm.pairs()) {
    loads.add_flow(alloc.server_of(u), alloc.server_of(v), rate, mix_pair(u, v));
  }
  return loads;
}

}  // namespace score::core
