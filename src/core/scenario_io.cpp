#include "core/scenario_io.hpp"

#include <algorithm>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace score::core {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("load_scenario: " + what);
}

std::string next_line(std::istream& in, const char* context) {
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') return line;
  }
  fail(std::string("unexpected end of input while reading ") + context);
}

std::size_t read_count(std::istream& in, const std::string& keyword) {
  std::istringstream ls(next_line(in, keyword.c_str()));
  std::string word;
  std::size_t n = 0;
  if (!(ls >> word >> n) || word != keyword) {
    fail("expected '" + keyword + " <count>'");
  }
  return n;
}

// Streams the pairs section row by row instead of materialising
// TrafficMatrix::pairs() (O(E) tuples — at the 1M-VM tier that dump is
// hundreds of MB of heap the writer doesn't need). Byte-identical to the
// sorted pairs() output: pairs() orders by (u, v), which per-row collection
// in ascending u with an ascending-v sort of each row reproduces exactly.
// Peak extra memory is O(max_degree).
void write_pairs_streaming(std::ostream& out, const traffic::TrafficMatrix& tm) {
  out << "pairs " << tm.num_pairs() << "\n";
  std::vector<std::pair<traffic::VmId, double>> row;
  for (traffic::VmId u = 0; u < tm.num_vms(); ++u) {
    row.clear();
    tm.for_each_neighbor(u, [&](traffic::VmId v, double rate) {
      if (u < v) row.emplace_back(v, rate);
    });
    std::sort(row.begin(), row.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [v, rate] : row) {
      out << u << ' ' << v << ' ' << rate << "\n";
    }
  }
}

}  // namespace

void save_scenario(std::ostream& out, const Allocation& alloc,
                   const traffic::TrafficMatrix& tm) {
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "score-scenario v1\n";
  out << "servers " << alloc.num_servers() << "\n";
  for (ServerId s = 0; s < alloc.num_servers(); ++s) {
    const ServerCapacity& cap = alloc.capacity(s);
    out << cap.vm_slots << ' ' << cap.ram_mb << ' ' << cap.cpu_cores << ' '
        << cap.net_bps << "\n";
  }
  out << "vms " << alloc.num_vms() << "\n";
  for (VmId vm = 0; vm < alloc.num_vms(); ++vm) {
    const VmSpec& spec = alloc.spec(vm);
    out << alloc.server_of(vm) << ' ' << spec.ram_mb << ' ' << spec.cpu_cores
        << ' ' << spec.net_bps << "\n";
  }
  write_pairs_streaming(out, tm);
}

namespace {

// Shared v1/v2 section parsers. `allow_dormant` admits `-` in the server
// column (v2 world scenarios); placed VMs are feasibility-checked by pushing
// them through a scratch Allocation.
std::vector<ServerCapacity> read_servers(std::istream& in) {
  const std::size_t num_servers = read_count(in, "servers");
  if (num_servers == 0) fail("scenario needs at least one server");
  std::vector<ServerCapacity> caps(num_servers);
  for (std::size_t s = 0; s < num_servers; ++s) {
    std::istringstream ls(next_line(in, "server capacity"));
    if (!(ls >> caps[s].vm_slots >> caps[s].ram_mb >> caps[s].cpu_cores >>
          caps[s].net_bps)) {
      fail("malformed server capacity line " + std::to_string(s));
    }
  }
  return caps;
}

traffic::TrafficMatrix read_pairs(std::istream& in, std::size_t num_vms) {
  traffic::TrafficMatrix tm(num_vms == 0 ? 1 : num_vms);
  const std::size_t num_pairs = read_count(in, "pairs");
  for (std::size_t p = 0; p < num_pairs; ++p) {
    std::istringstream ls(next_line(in, "traffic pair"));
    traffic::VmId u = 0, v = 0;
    double rate = 0.0;
    if (!(ls >> u >> v >> rate)) {
      fail("malformed pair line " + std::to_string(p));
    }
    if (u >= num_vms || v >= num_vms) {
      fail("pair line " + std::to_string(p) + " references unknown VM");
    }
    if (u == v) {
      fail("pair line " + std::to_string(p) + " is a self-pair (u == v)");
    }
    if (!(rate >= 0.0)) {
      fail("pair line " + std::to_string(p) + " has a negative or NaN rate");
    }
    tm.set(u, v, rate);
  }
  return tm;
}

}  // namespace

Scenario load_scenario(std::istream& in) {
  if (next_line(in, "magic") != "score-scenario v1") {
    fail("bad magic (expected 'score-scenario v1')");
  }

  std::vector<ServerCapacity> caps = read_servers(in);
  const std::size_t num_servers = caps.size();

  Allocation alloc(std::move(caps));
  const std::size_t num_vms = read_count(in, "vms");
  for (std::size_t vm = 0; vm < num_vms; ++vm) {
    std::istringstream ls(next_line(in, "vm placement"));
    ServerId server = 0;
    VmSpec spec;
    if (!(ls >> server >> spec.ram_mb >> spec.cpu_cores >> spec.net_bps)) {
      fail("malformed vm line " + std::to_string(vm));
    }
    if (server >= num_servers) {
      fail("vm " + std::to_string(vm) + " placed on unknown server " +
           std::to_string(server));
    }
    alloc.add_vm(spec, server);  // enforces capacity feasibility
  }

  traffic::TrafficMatrix tm = read_pairs(in, num_vms);
  return Scenario{std::move(alloc), std::move(tm)};
}

// ---------------------------------------------------------------------------
// v2: world scenarios with a lifecycle timeline.
// ---------------------------------------------------------------------------

std::size_t WorldScenario::num_active() const {
  std::size_t n = 0;
  for (const ServerId s : placement) {
    if (s != kInvalidServer) ++n;
  }
  return n;
}

void save_scenario_v2(std::ostream& out, const WorldScenario& world) {
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "score-scenario v2\n";
  out << "servers " << world.servers.size() << "\n";
  for (const ServerCapacity& cap : world.servers) {
    out << cap.vm_slots << ' ' << cap.ram_mb << ' ' << cap.cpu_cores << ' '
        << cap.net_bps << "\n";
  }
  out << "vms " << world.vm_specs.size() << "\n";
  for (std::size_t vm = 0; vm < world.vm_specs.size(); ++vm) {
    const VmSpec& spec = world.vm_specs[vm];
    if (world.placement[vm] == kInvalidServer) {
      out << '-';
    } else {
      out << world.placement[vm];
    }
    out << ' ' << spec.ram_mb << ' ' << spec.cpu_cores << ' ' << spec.net_bps
        << "\n";
  }
  write_pairs_streaming(out, world.tm);
  out << "events " << world.timeline.size() << "\n";
  for (const TimelineEvent& ev : world.timeline) {
    out << ev.epoch << ' '
        << (ev.kind == TimelineEventKind::kArrive ? "arrive" : "depart") << ' '
        << ev.first_vm << ' ' << ev.count << "\n";
  }
}

WorldScenario load_scenario_v2(std::istream& in) {
  if (next_line(in, "magic") != "score-scenario v2") {
    fail("bad magic (expected 'score-scenario v2')");
  }

  WorldScenario world;
  world.servers = read_servers(in);
  const std::size_t num_servers = world.servers.size();

  const std::size_t num_vms = read_count(in, "vms");
  world.vm_specs.resize(num_vms);
  world.placement.assign(num_vms, kInvalidServer);
  // Scratch allocation: placed VMs are pushed through Allocation::add_vm so
  // v2 enforces exactly the same capacity feasibility as v1 (ids differ —
  // only the aggregate per-server load matters here).
  Allocation scratch(world.servers);
  for (std::size_t vm = 0; vm < num_vms; ++vm) {
    std::istringstream ls(next_line(in, "vm placement"));
    std::string server_field;
    VmSpec& spec = world.vm_specs[vm];
    if (!(ls >> server_field >> spec.ram_mb >> spec.cpu_cores >> spec.net_bps)) {
      fail("malformed vm line " + std::to_string(vm));
    }
    if (server_field != "-") {
      std::size_t consumed = 0;
      unsigned long server = 0;
      try {
        server = std::stoul(server_field, &consumed);
      } catch (const std::exception&) {
        consumed = 0;
      }
      if (consumed != server_field.size()) {
        fail("vm " + std::to_string(vm) + " has malformed server field '" +
             server_field + "' (expected a server id or '-')");
      }
      if (server >= num_servers) {
        fail("vm " + std::to_string(vm) + " placed on unknown server " +
             std::to_string(server));
      }
      world.placement[vm] = static_cast<ServerId>(server);
      try {
        scratch.add_vm(spec, static_cast<ServerId>(server));
      } catch (const std::exception& e) {
        fail("vm " + std::to_string(vm) + " placement infeasible: " + e.what());
      }
    }
  }

  world.tm = read_pairs(in, num_vms);

  // Timeline: replay the events against the epoch-0 active set so that every
  // arrive lands on a fully dormant block and every depart on a fully active
  // one. Epoch 0 is the initial state itself, so events start at epoch 1.
  std::vector<bool> active(num_vms);
  for (std::size_t vm = 0; vm < num_vms; ++vm) {
    active[vm] = world.placement[vm] != kInvalidServer;
  }
  const std::size_t num_events = read_count(in, "events");
  world.timeline.reserve(num_events);
  std::size_t last_epoch = 1;
  bool epoch_has_arrival = false;  // canonical order: departs precede arrives
  for (std::size_t e = 0; e < num_events; ++e) {
    std::istringstream ls(next_line(in, "timeline event"));
    TimelineEvent ev;
    std::string kind;
    if (!(ls >> ev.epoch >> kind >> ev.first_vm >> ev.count)) {
      fail("malformed event line " + std::to_string(e));
    }
    if (kind == "arrive") {
      ev.kind = TimelineEventKind::kArrive;
    } else if (kind == "depart") {
      ev.kind = TimelineEventKind::kDepart;
    } else {
      fail("event line " + std::to_string(e) + " has unknown kind '" + kind +
           "'");
    }
    if (ev.epoch < 1) {
      fail("event line " + std::to_string(e) +
           " has epoch 0 (initial state is the placement column; events start "
           "at epoch 1)");
    }
    if (ev.epoch < last_epoch) {
      fail("event line " + std::to_string(e) + " epoch " +
           std::to_string(ev.epoch) + " decreases (timeline must be ordered)");
    }
    if (ev.epoch != last_epoch) epoch_has_arrival = false;
    last_epoch = ev.epoch;
    // The continuous engine applies an epoch's departures before its
    // arrivals; a valid timeline is written in that canonical order, so a
    // depart after an arrive within one epoch would replay differently than
    // it validates here.
    if (ev.kind == TimelineEventKind::kArrive) {
      epoch_has_arrival = true;
    } else if (epoch_has_arrival) {
      fail("event line " + std::to_string(e) +
           ": depart after an arrive within epoch " + std::to_string(ev.epoch) +
           " (canonical order is departures first)");
    }
    if (ev.count == 0) {
      fail("event line " + std::to_string(e) + " has zero count");
    }
    if (ev.first_vm >= num_vms || ev.count > num_vms - ev.first_vm) {
      fail("event line " + std::to_string(e) + " block [" +
           std::to_string(ev.first_vm) + ", " +
           std::to_string(ev.first_vm + ev.count) + ") exceeds the world of " +
           std::to_string(num_vms) + " VMs");
    }
    const bool arriving = ev.kind == TimelineEventKind::kArrive;
    for (VmId vm = ev.first_vm; vm < ev.first_vm + ev.count; ++vm) {
      if (active[vm] == arriving) {
        fail("event line " + std::to_string(e) + ": vm " + std::to_string(vm) +
             (arriving ? " arrives but is already active"
                       : " departs but is already dormant"));
      }
      active[vm] = arriving;
    }
    world.timeline.push_back(ev);
  }
  return world;
}

}  // namespace score::core
