#include "core/scenario_io.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace score::core {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("load_scenario: " + what);
}

std::string next_line(std::istream& in, const char* context) {
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') return line;
  }
  fail(std::string("unexpected end of input while reading ") + context);
}

std::size_t read_count(std::istream& in, const std::string& keyword) {
  std::istringstream ls(next_line(in, keyword.c_str()));
  std::string word;
  std::size_t n = 0;
  if (!(ls >> word >> n) || word != keyword) {
    fail("expected '" + keyword + " <count>'");
  }
  return n;
}

}  // namespace

void save_scenario(std::ostream& out, const Allocation& alloc,
                   const traffic::TrafficMatrix& tm) {
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "score-scenario v1\n";
  out << "servers " << alloc.num_servers() << "\n";
  for (ServerId s = 0; s < alloc.num_servers(); ++s) {
    const ServerCapacity& cap = alloc.capacity(s);
    out << cap.vm_slots << ' ' << cap.ram_mb << ' ' << cap.cpu_cores << ' '
        << cap.net_bps << "\n";
  }
  out << "vms " << alloc.num_vms() << "\n";
  for (VmId vm = 0; vm < alloc.num_vms(); ++vm) {
    const VmSpec& spec = alloc.spec(vm);
    out << alloc.server_of(vm) << ' ' << spec.ram_mb << ' ' << spec.cpu_cores
        << ' ' << spec.net_bps << "\n";
  }
  const auto pairs = tm.pairs();
  out << "pairs " << pairs.size() << "\n";
  for (const auto& [u, v, rate] : pairs) {
    out << u << ' ' << v << ' ' << rate << "\n";
  }
}

Scenario load_scenario(std::istream& in) {
  if (next_line(in, "magic") != "score-scenario v1") {
    fail("bad magic (expected 'score-scenario v1')");
  }

  const std::size_t num_servers = read_count(in, "servers");
  if (num_servers == 0) fail("scenario needs at least one server");
  std::vector<ServerCapacity> caps(num_servers);
  for (std::size_t s = 0; s < num_servers; ++s) {
    std::istringstream ls(next_line(in, "server capacity"));
    if (!(ls >> caps[s].vm_slots >> caps[s].ram_mb >> caps[s].cpu_cores >>
          caps[s].net_bps)) {
      fail("malformed server capacity line " + std::to_string(s));
    }
  }

  Allocation alloc(std::move(caps));
  const std::size_t num_vms = read_count(in, "vms");
  for (std::size_t vm = 0; vm < num_vms; ++vm) {
    std::istringstream ls(next_line(in, "vm placement"));
    ServerId server = 0;
    VmSpec spec;
    if (!(ls >> server >> spec.ram_mb >> spec.cpu_cores >> spec.net_bps)) {
      fail("malformed vm line " + std::to_string(vm));
    }
    if (server >= num_servers) {
      fail("vm " + std::to_string(vm) + " placed on unknown server " +
           std::to_string(server));
    }
    alloc.add_vm(spec, server);  // enforces capacity feasibility
  }

  traffic::TrafficMatrix tm(num_vms == 0 ? 1 : num_vms);
  const std::size_t num_pairs = read_count(in, "pairs");
  for (std::size_t p = 0; p < num_pairs; ++p) {
    std::istringstream ls(next_line(in, "traffic pair"));
    traffic::VmId u = 0, v = 0;
    double rate = 0.0;
    if (!(ls >> u >> v >> rate)) {
      fail("malformed pair line " + std::to_string(p));
    }
    if (u >= num_vms || v >= num_vms) {
      fail("pair line " + std::to_string(p) + " references unknown VM");
    }
    tm.set(u, v, rate);
  }

  return Scenario{std::move(alloc), std::move(tm)};
}

}  // namespace score::core
