// Multi-token extension — parallelising S-CORE's control loop.
//
// The paper serialises all migration decisions through a single token, which
// makes one full iteration take |V| holds. Because Theorem 1's delta is
// computed against the *current* allocation and applied atomically, several
// tokens can safely circulate over disjoint VM subsets: every accepted
// migration still strictly reduces the global cost at the moment it commits,
// so monotonicity and convergence are preserved while iteration wall-clock
// shrinks by roughly the token count. (The single-token case is exactly the
// paper's Round-Robin algorithm; k > 1 is an extension we evaluate in
// bench_ablation_tokens.)
//
// Tokens own contiguous VM-id ranges and visit them in ascending order
// (Round-Robin within the partition).
#pragma once

#include <vector>

#include "core/migration_engine.hpp"
#include "core/simulation.hpp"

namespace score::core {

struct MultiTokenConfig {
  std::size_t tokens = 4;
  std::size_t iterations = 5;
  bool stop_when_stable = true;
  double token_hold_s = 0.02;
  double token_pass_per_hop_s = 0.0005;
  double migration_bandwidth_bps = 1e9;
  double precopy_factor = 1.3;
  double migration_overhead_s = 0.1;
};

class MultiTokenSimulation {
 public:
  MultiTokenSimulation(const MigrationEngine& engine, Allocation& alloc,
                       const traffic::TrafficMatrix& tm)
      : engine_(&engine), alloc_(&alloc), tm_(&tm) {}

  /// Runs until `iterations` global passes complete (an iteration ends when
  /// every token finished a pass over its partition) or no token migrated
  /// anything during a pass. Reuses SimResult: `iterations[i]` aggregates all
  /// partitions' holds/migrations for global pass i.
  SimResult run(const MultiTokenConfig& config = {});

 private:
  const MigrationEngine* engine_;
  Allocation* alloc_;
  const traffic::TrafficMatrix* tm_;
};

}  // namespace score::core
