// Sharded cost oracle — the thread-safe face of the incremental cost cache.
//
// CachedCostModel is deliberately not thread-safe (bound state mutates under
// const), so parallel token rounds cannot share one instance. Instead each
// token partition gets its *own* CachedCostModel, bound to a private
// snapshot of the allocation taken at the pass barrier:
//
//   begin_pass(master)   snapshot master into every shard, rebind the
//                        shard's cache to its snapshot (parallelisable —
//                        shard state is disjoint by construction);
//   shard walk           the owning token evaluates and commits migrations
//                        against its snapshot through its cache; peers'
//                        positions are frozen at pass start, which is
//                        exactly the stale-information regime the paper's
//                        distributed agents operate in (§V);
//   reconcile(master)    after the merged commits land on the master
//                        allocation, recompute the true Eq. (2) total as
//                        ½ Σ_t Σ_{u∈partition_t} C^A(u) — per-shard partial
//                        sums over the *merged* state, summed in shard order
//                        so the result is independent of the execution
//                        policy. This value is fed back as the pass cost.
//
// Invariant (extends the ARCHITECTURE.md cache ownership contract): a shard
// cache is only ever touched by the job running its shard index; the oracle
// itself holds no mutable state shared across shards during a pass.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/cached_cost_model.hpp"
#include "util/exec_policy.hpp"

namespace score::core {

/// Inclusive VM-id range [first, last] owned by one token/shard.
struct VmRange {
  VmId first = 0;
  VmId last = 0;

  std::size_t size() const { return static_cast<std::size_t>(last - first) + 1; }
  bool operator==(const VmRange&) const = default;
};

/// Contiguous id partitions, sizes differing by at most one (the multi-token
/// carve-up). `shards` is clamped to [1, num_vms]; num_vms must be > 0.
std::vector<VmRange> partition_vms(std::size_t num_vms, std::size_t shards);

/// Un-halved Eq. (1) partial sum Σ_{u∈range} C^A(u) of one shard's VM range —
/// the per-shard term reconcile() halves and adds up. `model` may be any
/// CostModel: a CachedCostModel *bound* to (alloc, tm) serves each term from
/// its cache in O(1) (how driver/streaming arms per-shard drift baselines),
/// an unbound model recomputes brute-force (how reconcile and the
/// SCORE_CHECK_CACHE attribution check stay independent of cache state).
double shard_partial_sum(const CostModel& model, const Allocation& alloc,
                         const traffic::TrafficMatrix& tm,
                         const VmRange& range);

class ShardedCostOracle {
 public:
  /// Partitions must be non-empty and pairwise disjoint; they are assumed to
  /// cover exactly the VM ids of the allocations later passed to begin_pass.
  ShardedCostOracle(const topo::Topology& topology, LinkWeights weights,
                    std::vector<VmRange> partitions);

  std::size_t num_shards() const { return shards_.size(); }
  const VmRange& partition(std::size_t shard) const {
    return shards_.at(shard).range;
  }

  /// Snapshot `master` into every shard and (re)bind the shard caches.
  /// Runs one job per shard under `policy`.
  void begin_pass(const Allocation& master, const traffic::TrafficMatrix& tm,
                  const util::ExecPolicy& policy);

  /// Incremental begin_pass: instead of deep-copying `master` into every
  /// shard (O(shards × world)), resync each shard's existing snapshot by
  /// replaying only the moves that could have diverged it since the previous
  /// pass. `touched` must contain (at least) every VM whose placement
  /// changed in any shard snapshot or on the master since the previous
  /// begin_pass — in the multi-token driver that is the union of all shards'
  /// proposed local moves, whether or not the merge committed them. Per
  /// shard, each touched VM whose snapshot placement differs from `master`
  /// is folded through CachedCostModel::resync_migration (capacity checks
  /// skipped: the final state equals the validated master), so the cost is
  /// O(shards × |touched| × degree), independent of world size. Shards with
  /// no usable snapshot (first pass, rebound containers, VM-count change)
  /// fall back to the full copy. Jobs run block-cyclic: resync work is
  /// skewed across shards, so striding balances workers.
  void begin_pass(const Allocation& master, const traffic::TrafficMatrix& tm,
                  const util::ExecPolicy& policy,
                  const std::vector<VmId>& touched);

  /// The shard's private allocation snapshot (valid after begin_pass).
  /// Mutable by design: the owning token commits its pass-local migrations
  /// here through shard_model's apply_migration.
  Allocation& shard_alloc(std::size_t shard);
  const CachedCostModel& shard_model(std::size_t shard) const;

  /// True Eq. (2) total of `master` from per-shard partial sums (one job per
  /// shard under `policy`, summed in ascending shard order — deterministic
  /// for any policy). Pure with respect to the shard caches: `master` is not
  /// any shard's bound pair, so the per-VM Eq. (1) terms are recomputed
  /// brute-force against the merged state.
  double reconcile(const Allocation& master, const traffic::TrafficMatrix& tm,
                   const util::ExecPolicy& policy) const;

  /// Per-shard partial sums of the last reconcile() (diagnostics/tests).
  const std::vector<double>& last_shard_sums() const { return last_sums_; }

 private:
  struct Shard {
    VmRange range;
    std::unique_ptr<CachedCostModel> model;
    std::unique_ptr<Allocation> snapshot;
  };

  std::vector<Shard> shards_;
  mutable std::vector<double> last_sums_;
};

}  // namespace score::core
