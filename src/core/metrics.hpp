// Evaluation metrics shared by the benchmark harness and examples:
// rack(ToR)-level traffic matrices (Fig. 3a-c heat-map data) and per-layer
// link-utilisation summaries (Fig. 4a).
#pragma once

#include <vector>

#include "core/allocation.hpp"
#include "topology/link_load.hpp"
#include "topology/topology.hpp"
#include "traffic/traffic_matrix.hpp"

namespace score::core {

/// Rack-by-rack aggregate traffic implied by an allocation: entry (r, s) is
/// the summed λ of VM pairs hosted in racks r and s (r != s; intra-rack
/// traffic excluded, as ToR-level TMs only see traffic crossing the ToR).
/// This is the quantity visualised by the paper's Fig. 3a-c.
std::vector<std::vector<double>> tor_level_matrix(const topo::Topology& topology,
                                                  const Allocation& alloc,
                                                  const traffic::TrafficMatrix& tm);

/// Peak entry of a ToR matrix (for normalising heat maps to [0, 1]).
double tor_matrix_peak(const std::vector<std::vector<double>>& matrix);

/// Fraction of non-zero rack pairs (the paper's TMs are sparse: "only a
/// handful of ToRs become hotspots").
double tor_matrix_fill(const std::vector<std::vector<double>>& matrix);

/// Build the per-link load map implied by an allocation + TM, using the
/// harness-wide per-pair ECMP hash.
topo::LinkLoadMap link_loads_for(const topo::Topology& topology,
                                 const Allocation& alloc,
                                 const traffic::TrafficMatrix& tm);

}  // namespace score::core
