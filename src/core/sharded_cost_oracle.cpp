#include "core/sharded_cost_oracle.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace score::core {

std::vector<VmRange> partition_vms(std::size_t num_vms, std::size_t shards) {
  if (num_vms == 0) throw std::invalid_argument("partition_vms: no VMs");
  shards = std::max<std::size_t>(1, std::min(shards, num_vms));
  std::vector<VmRange> ranges;
  ranges.reserve(shards);
  const std::size_t base = num_vms / shards;
  const std::size_t extra = num_vms % shards;
  VmId first = 0;
  for (std::size_t t = 0; t < shards; ++t) {
    const auto size = static_cast<VmId>(base + (t < extra ? 1 : 0));
    ranges.push_back({first, static_cast<VmId>(first + size - 1)});
    first += size;
  }
  return ranges;
}

double shard_partial_sum(const CostModel& model, const Allocation& alloc,
                         const traffic::TrafficMatrix& tm,
                         const VmRange& range) {
  double sum = 0.0;
  for (VmId u = range.first; u <= range.last; ++u) {
    sum += model.vm_cost(alloc, tm, u);
  }
  return sum;
}

ShardedCostOracle::ShardedCostOracle(const topo::Topology& topology,
                                     LinkWeights weights,
                                     std::vector<VmRange> partitions) {
  if (partitions.empty()) {
    throw std::invalid_argument("ShardedCostOracle: no partitions");
  }
  shards_.reserve(partitions.size());
  for (const VmRange& range : partitions) {
    if (range.last < range.first) {
      throw std::invalid_argument("ShardedCostOracle: empty partition range");
    }
    Shard shard;
    shard.range = range;
    shard.model = std::make_unique<CachedCostModel>(topology, weights);
    shards_.push_back(std::move(shard));
  }
}

void ShardedCostOracle::begin_pass(const Allocation& master,
                                   const traffic::TrafficMatrix& tm,
                                   const util::ExecPolicy& policy) {
  util::for_each_shard(policy, shards_.size(), [&](std::size_t t) {
    Shard& shard = shards_[t];
    if (shard.snapshot) {
      *shard.snapshot = master;
    } else {
      shard.snapshot = std::make_unique<Allocation>(master);
    }
    shard.model->bind(*shard.snapshot, tm);
  });
}

void ShardedCostOracle::begin_pass(const Allocation& master,
                                   const traffic::TrafficMatrix& tm,
                                   const util::ExecPolicy& policy,
                                   const std::vector<VmId>& touched) {
  util::for_each_shard(
      policy, shards_.size(),
      [&](std::size_t t) {
        Shard& shard = shards_[t];
        if (!shard.snapshot ||
            !shard.model->bound_to(*shard.snapshot, tm) ||
            shard.snapshot->num_vms() != master.num_vms()) {
          // No usable snapshot — full copy, exactly the non-incremental path.
          if (shard.snapshot) {
            *shard.snapshot = master;
          } else {
            shard.snapshot = std::make_unique<Allocation>(master);
          }
          shard.model->bind(*shard.snapshot, tm);
          return;
        }
        // Replay the divergence: every VM that moved anywhere since the
        // previous pass is in `touched`; folding each one whose placement
        // differs makes the snapshot equal to master again (and keeps the
        // cached Eq. (1)/(2) sums current without a rebuild).
        for (const VmId u : touched) {
          const ServerId want = master.server_of(u);
          if (shard.snapshot->server_of(u) != want) {
            shard.model->resync_migration(*shard.snapshot, tm, u, want);
          }
        }
#ifdef SCORE_CHECK_CACHE
        // The touched-set contract is the driver's to uphold; under the
        // cache cross-check build, verify it — a missed VM here would mean
        // this shard silently optimises against a stale world.
        for (VmId u = 0; u < master.num_vms(); ++u) {
          if (shard.snapshot->server_of(u) != master.server_of(u)) {
            throw std::logic_error(
                "ShardedCostOracle::begin_pass(touched): snapshot diverges "
                "from master at vm " + std::to_string(u) +
                " — incomplete touched set");
          }
        }
#endif
      },
      util::ShardSchedule::kCyclic);
}

Allocation& ShardedCostOracle::shard_alloc(std::size_t shard) {
  Shard& s = shards_.at(shard);
  if (!s.snapshot) {
    throw std::logic_error("ShardedCostOracle: shard_alloc before begin_pass");
  }
  return *s.snapshot;
}

const CachedCostModel& ShardedCostOracle::shard_model(std::size_t shard) const {
  return *shards_.at(shard).model;
}

double ShardedCostOracle::reconcile(const Allocation& master,
                                    const traffic::TrafficMatrix& tm,
                                    const util::ExecPolicy& policy) const {
  last_sums_.assign(shards_.size(), 0.0);
  util::for_each_shard(policy, shards_.size(), [&](std::size_t t) {
    const Shard& shard = shards_[t];
    // `master` is never a shard's bound pair (shards bind their private
    // snapshots), so this is the brute-force Eq. (1) walk — pure, hence
    // safe to run concurrently with the other shards' sums.
    last_sums_[t] = shard_partial_sum(*shard.model, master, tm, shard.range);
  });
  double total = 0.0;
  for (const double sum : last_sums_) total += sum;  // fixed order: shard 0..k-1
  return 0.5 * total;  // Eq. (2): every unordered pair counted once
}

}  // namespace score::core
