// Shared core types: VM and server identities, resource specs and capacities.
//
// The paper assigns every VM a unique, totally ordered 32-bit id (its IPv4
// address in the Xen implementation); servers have slot/RAM/CPU/bandwidth
// capacities that migration targets are probed for (§V-B.5: capacity
// request/response packets report free VM slots and available RAM).
#pragma once

#include <cstdint>
#include <limits>

namespace score::core {

using VmId = std::uint32_t;
using ServerId = std::uint32_t;

inline constexpr VmId kInvalidVm = std::numeric_limits<VmId>::max();
inline constexpr ServerId kInvalidServer = std::numeric_limits<ServerId>::max();

/// Per-VM resource requirements. Defaults mirror the paper's testbed guests
/// (196 MB Ubuntu VMs) with a nominal single vCPU.
struct VmSpec {
  double ram_mb = 196.0;
  double cpu_cores = 1.0;
  /// Average NIC load the VM imposes on its host uplink (bps); the engine's
  /// bandwidth-threshold check (§V-C) uses this.
  double net_bps = 0.0;
};

/// Per-server capacity. Paper §VI: "Each host can accommodate up to 16 VMs".
struct ServerCapacity {
  std::size_t vm_slots = 16;
  double ram_mb = 16.0 * 4096.0;
  double cpu_cores = 16.0;
  double net_bps = 1e9;
};

}  // namespace score::core
