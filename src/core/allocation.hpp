// VM-to-server allocation A with capacity accounting (paper §II, §V-B.5).
//
// An allocation maps every VM u to its hosting server σ(u) and maintains the
// inverse server → VM-set index plus residual capacities (slots, RAM, CPU,
// host NIC bandwidth). Placement and migration enforce the same feasibility
// checks the Xen implementation probes for with capacity request/response
// packets: free VM slots and available RAM (heterogeneous RAM supported),
// extended with CPU and the bandwidth threshold of §V-C.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace score::core {

class Allocation {
 public:
  /// `num_servers` identical servers. Server ids must match the topology's
  /// host ids (one server per topology host).
  Allocation(std::size_t num_servers, const ServerCapacity& capacity);

  /// Heterogeneous servers.
  explicit Allocation(std::vector<ServerCapacity> capacities);

  std::size_t num_servers() const { return capacities_.size(); }
  std::size_t num_vms() const { return vm_server_.size(); }

  /// Create a VM with sequential id and place it. Throws if infeasible.
  VmId add_vm(const VmSpec& spec, ServerId server);

  /// True when `server` can additionally host a VM of the given spec.
  bool can_host(ServerId server, const VmSpec& spec) const;

  /// Move a VM to `target`. Throws if the target cannot host it.
  /// Moving a VM to its current server is a no-op.
  void migrate(VmId vm, ServerId target);

  /// migrate() without the capacity check: for replaying moves that are
  /// already known to land in a valid final state (snapshot resync toward a
  /// validated master allocation). Intermediate states may transiently
  /// overcommit a server — only the final resynced state must be valid.
  void migrate_unchecked(VmId vm, ServerId target);

  ServerId server_of(VmId vm) const { return vm_server_.at(vm); }
  const VmSpec& spec(VmId vm) const { return vm_spec_.at(vm); }
  const std::vector<VmId>& vms_on(ServerId server) const {
    return server_vms_.at(server);
  }
  const ServerCapacity& capacity(ServerId server) const {
    return capacities_.at(server);
  }

  std::size_t used_slots(ServerId server) const { return server_vms_.at(server).size(); }
  double used_ram_mb(ServerId server) const { return used_ram_.at(server); }
  double used_cpu(ServerId server) const { return used_cpu_.at(server); }
  double used_net_bps(ServerId server) const { return used_net_.at(server); }

  double free_ram_mb(ServerId server) const {
    return capacities_.at(server).ram_mb - used_ram_.at(server);
  }
  std::size_t free_slots(ServerId server) const {
    return capacities_.at(server).vm_slots - server_vms_.at(server).size();
  }

  /// Recomputes all indices from scratch and compares with the incrementally
  /// maintained state; returns false on any divergence or capacity violation.
  bool check_consistency() const;

  /// Mutation counter: bumped by add_vm and by every migrate that actually
  /// moves a VM (self-migrations are no-ops and do not count). CachedCostModel
  /// compares it against the version it last synced with to detect
  /// out-of-band mutations and rebuild instead of serving stale sums.
  std::uint64_t version() const { return version_; }

 private:
  std::vector<ServerCapacity> capacities_;
  std::uint64_t version_ = 0;
  std::vector<ServerId> vm_server_;
  std::vector<VmSpec> vm_spec_;
  std::vector<std::vector<VmId>> server_vms_;
  std::vector<double> used_ram_;
  std::vector<double> used_cpu_;
  std::vector<double> used_net_;
};

}  // namespace score::core
