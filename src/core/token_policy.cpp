#include "core/token_policy.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace score::core {

// ---------------------------------------------------------------- RoundRobin

VmId RoundRobinPolicy::start(std::size_t num_vms) {
  if (num_vms == 0) throw std::invalid_argument("RoundRobin: no VMs");
  num_vms_ = num_vms;
  return 0;  // v0: lowest id
}

VmId RoundRobinPolicy::next(VmId holder) {
  return static_cast<VmId>((holder + 1) % num_vms_);
}

// ---------------------------------------------------------- HighestLevelFirst

VmId HighestLevelFirstPolicy::start(std::size_t num_vms) {
  if (num_vms == 0) throw std::invalid_argument("HLF: no VMs");
  // "The highest communication level is initialized at zero for all VMs."
  levels_.assign(num_vms, 0);
  checked_.assign(num_vms, false);
  checked_count_ = 0;
  return 0;
}

void HighestLevelFirstPolicy::observe(const CostModel& model,
                                      const Allocation& alloc,
                                      const traffic::TrafficMatrix& tm,
                                      VmId holder) {
  // The holder knows its own highest level exactly...
  levels_.at(holder) =
      static_cast<std::uint8_t>(model.highest_level(alloc, tm, holder));
  // ...and raises (never lowers) the entries of the VMs it talks to
  // (Algorithm 1 lines 3-5).
  tm.for_each_neighbor(holder, [&](VmId v, double /*rate*/) {
    const auto lvl = static_cast<std::uint8_t>(model.level(alloc, holder, v));
    if (levels_[v] < lvl) levels_[v] = lvl;
  });
}

VmId HighestLevelFirstPolicy::next(VmId holder) {
  const auto n = static_cast<VmId>(levels_.size());
  if (!checked_[holder]) {
    checked_[holder] = true;
    ++checked_count_;
  }
  if (n == 1) return holder;

  // Algorithm 1 lines 6-14: starting from holder ⊕ 1 in cyclic id order, find
  // the first *unchecked* VM at the holder's current level; drop a level when
  // none is found there.
  if (checked_count_ < n) {
    for (int cl = levels_[holder]; cl >= 0; --cl) {
      for (VmId step = 1; step < n; ++step) {
        const VmId z = static_cast<VmId>((holder + step) % n);
        if (!checked_[z] && levels_[z] == cl) return z;
      }
    }
    // Unchecked VMs remain but only at levels *above* the holder's (their
    // entries were raised by gossip after the holder's own hold): take the
    // highest-level, lowest-id one so the round still visits everyone once.
    VmId best = kInvalidVm;
    for (VmId v = 0; v < n; ++v) {
      if (!checked_[v] && (best == kInvalidVm || levels_[v] > levels_[best])) {
        best = v;
      }
    }
    if (best != kInvalidVm) return best;
  }

  // Lines 15-16: no unchecked VM left — start a new round from the lowest-id
  // VM among those at the maximum known level.
  std::fill(checked_.begin(), checked_.end(), false);
  checked_count_ = 0;
  const std::uint8_t max_level = *std::max_element(levels_.begin(), levels_.end());
  for (VmId v = 0; v < n; ++v) {
    if (levels_[v] == max_level && v != holder) return v;
  }
  return static_cast<VmId>((holder + 1) % n);
}

// -------------------------------------------------------------------- Random

VmId RandomPolicy::start(std::size_t num_vms) {
  if (num_vms == 0) throw std::invalid_argument("Random: no VMs");
  order_.resize(num_vms);
  std::iota(order_.begin(), order_.end(), 0u);
  reshuffle();
  pos_ = 0;
  return order_[0];
}

void RandomPolicy::reshuffle() { rng_.shuffle(order_); }

VmId RandomPolicy::next(VmId holder) {
  (void)holder;
  ++pos_;
  if (pos_ >= order_.size()) {
    reshuffle();
    pos_ = 0;
  }
  return order_[pos_];
}

// ------------------------------------------------------- HighestTrafficFirst

VmId HighestTrafficFirstPolicy::start(std::size_t num_vms) {
  if (num_vms == 0) throw std::invalid_argument("HTF: no VMs");
  volume_.assign(num_vms, 0.0);
  order_.resize(num_vms);
  std::iota(order_.begin(), order_.end(), 0u);
  pos_ = 0;
  return order_[0];
}

void HighestTrafficFirstPolicy::observe(const CostModel& model,
                                        const Allocation& alloc,
                                        const traffic::TrafficMatrix& tm,
                                        VmId holder) {
  (void)model;
  (void)alloc;
  double total = 0.0;
  for (const auto& [v, rate] : tm.neighbors(holder)) {
    (void)v;
    total += rate;
  }
  volume_[holder] = total;
}

void HighestTrafficFirstPolicy::resort() {
  std::stable_sort(order_.begin(), order_.end(), [this](VmId a, VmId b) {
    if (volume_[a] != volume_[b]) return volume_[a] > volume_[b];
    return a < b;
  });
}

VmId HighestTrafficFirstPolicy::next(VmId holder) {
  (void)holder;
  ++pos_;
  if (pos_ >= order_.size()) {
    resort();
    pos_ = 0;
  }
  return order_[pos_];
}

// ------------------------------------------------------------------- factory

std::unique_ptr<TokenPolicy> make_policy(const std::string& name,
                                         std::uint64_t seed) {
  if (name == "round-robin" || name == "rr") return std::make_unique<RoundRobinPolicy>();
  if (name == "highest-level-first" || name == "hlf") {
    return std::make_unique<HighestLevelFirstPolicy>();
  }
  if (name == "random") return std::make_unique<RandomPolicy>(seed);
  if (name == "highest-traffic-first" || name == "htf") {
    return std::make_unique<HighestTrafficFirstPolicy>();
  }
  throw std::invalid_argument("make_policy: unknown policy '" + name + "'");
}

}  // namespace score::core
