// score_scheduler — the placement-manager process of the multi-process
// control plane.
//
// Builds the authoritative world from flags, listens for --agents score_agent
// daemons, partitions the hosts among them, injects the token and runs the
// distributed S-CORE loop with every agent decision executed out-of-process.
// Prints the same convergence report as `score_cli --mode distributed` plus
// the structural wire-trace hash — which must equal the in-process hash for
// the same flags at loss 0 (the differential test's one-word check).
//
// Fault tolerance: --fault-seed arms a deterministic adversarial transport
// under every connection (the ReliableLink absorbs the injected faults, so
// the run stays bit-identical); the listening socket stays open for the whole
// run so a crashed daemon can reconnect and resume, or — after --grace-s —
// have its hosts redistributed to a survivor. --kill-agent/--kill-after-tasks
// sever a connection on purpose for chaos testing. None of these flags enter
// the world fingerprint: they change how the run is transported, not what
// world is simulated.
//
// The listen address is printed (and flushed) before the first accept so a
// wrapper can read the real port of an ephemeral `tcp:127.0.0.1:0` bind.
//
// Example:
//   score_scheduler --listen unix:/tmp/score.sock --agents 4 --vms 1024
//   score_agent    --connect unix:/tmp/score.sock            --vms 1024  (x4)
#include <fstream>
#include <iostream>
#include <vector>

#include "hypervisor/distributed_runtime.hpp"
#include "hypervisor/remote_executor.hpp"
#include "util/flags.hpp"
#include "util/socket.hpp"
#include "world_builder.hpp"

int main(int argc, char** argv) {
  using namespace score;

  util::Flags flags;
  tools::register_world_flags(flags);
  flags.add_string("listen", "tcp:127.0.0.1:0",
                   "address to listen on (unix:/path or tcp:host:port; "
                   "port 0 = ephemeral, the real address is printed)");
  flags.add_int("agents", 4, "number of score_agent connections to wait for");
  flags.add_string("wire-trace", "",
                   "write the task-protocol wire trace (one line per frame) "
                   "to this file");
  flags.add_int("fault-seed", 0,
                "seed for the adversarial transport under every connection "
                "(drop/duplicate/corrupt/truncate/reorder/delay); 0 = clean");
  flags.add_double("fault-rate", 0.05,
                   "per-frame fault probability when --fault-seed is set");
  flags.add_double("result-timeout", 60.0,
                   "silence on an awaited result before a daemon is declared "
                   "dead (seconds)");
  flags.add_double("grace-s", 10.0,
                   "how long a dead daemon's hosts stay parked awaiting a "
                   "reconnect before redistribution to a survivor (seconds)");
  flags.add_bool("pipeline", true,
                 "overlap stateless probe-request tasks instead of "
                 "round-tripping each one");
  flags.add_int("kill-after-tasks", 0,
                "chaos hook: sever --kill-agent's connection after its Nth "
                "task was sent; 0 disables");
  flags.add_int("kill-agent", 0, "agent index for --kill-after-tasks");
  flags.add_bool("recovery-stats", false,
                 "print fault-tolerance counters after the run");

  try {
    if (!flags.parse(argc, argv)) {
      std::cout << flags.help("score_scheduler");
      return 0;
    }
    const long long num_agents = flags.get_int("agents");
    if (num_agents < 1) {
      throw std::invalid_argument("--agents must be at least 1");
    }
    if (flags.get_int("kill-agent") < 0 ||
        flags.get_int("kill-agent") >= num_agents) {
      throw std::invalid_argument("--kill-agent out of range");
    }

    tools::World w = tools::build_world(flags);

    util::ServerSocket server =
        util::ServerSocket::listen(flags.get_string("listen"));
    std::cout << "score_scheduler: listening on " << server.address()
              << ", waiting for " << num_agents << " agents" << std::endl;

    std::vector<util::Socket> agents;
    for (long long i = 0; i < num_agents; ++i) {
      agents.push_back(server.accept());
    }
    std::cout << "score_scheduler: " << num_agents << " agents connected"
              << std::endl;

    hypervisor::RemoteExecutorConfig config;
    config.fault_seed = static_cast<std::uint64_t>(flags.get_int("fault-seed"));
    config.fault_profile =
        util::FaultProfile::chaos(flags.get_double("fault-rate"));
    config.result_timeout_s = flags.get_double("result-timeout");
    config.reconnect_grace_s = flags.get_double("grace-s");
    config.pipeline_probes = flags.get_bool("pipeline");
    config.kill_after_tasks =
        static_cast<std::size_t>(flags.get_int("kill-after-tasks"));
    config.kill_agent = static_cast<std::uint32_t>(flags.get_int("kill-agent"));

    hypervisor::RemoteAgentExecutor executor(std::move(agents), w.fingerprint,
                                             config);
    // The listening socket stays open: a crashed daemon reconnects here.
    executor.set_reconnect_acceptor([&server](double timeout_s) {
      return server.accept_timeout(timeout_s);
    });
    std::ofstream trace_out;
    if (!flags.get_string("wire-trace").empty()) {
      trace_out.open(flags.get_string("wire-trace"));
      if (!trace_out) {
        throw std::runtime_error("cannot open " +
                                 flags.get_string("wire-trace"));
      }
      executor.set_wire_tap(
          [&trace_out](const hypervisor::RemoteAgentExecutor::WireRecord& r) {
            trace_out << (r.to_agent ? '>' : '<') << ' ' << r.agent << ' '
                      << r.seq << ' ' << static_cast<int>(r.type) << ' '
                      << r.bytes << ' ' << std::hex << r.payload_fnv
                      << std::dec << '\n';
          });
    }

    hypervisor::DistributedScoreRuntime runtime(*w.model, *w.alloc, *w.tm,
                                                w.runtime, executor);
    const hypervisor::RuntimeResult r = runtime.run();
    const driver::ConvergenceReport rep = r.report();
    std::cout << "multi-process S-CORE: cost " << rep.initial_cost << " -> "
              << rep.final_cost << " (" << 100.0 * rep.reduction()
              << "% reduction), " << rep.migrations << " migrations, "
              << rep.rounds << " rounds, " << rep.duration_s
              << " s simulated\n";
    std::cout << "control plane: " << rep.token_messages << " token msgs ("
              << rep.token_bytes << " B), " << rep.control_bytes
              << " control bytes total\n";
    std::cout << "trace hash: " << std::hex << r.trace_hash << std::dec
              << " (epoch " << r.final_epoch << ", ring position "
              << r.final_ring_pos << ")\n";
    if (flags.get_bool("recovery-stats")) {
      const hypervisor::RecoveryStats& s = executor.recovery_stats();
      std::cout << "recovery: " << s.reconnects << " reconnects ("
                << s.full_resyncs << " resyncs, " << s.resumes_in_place
                << " in place, " << s.resumes_ahead << " ahead), "
                << s.redistributions << " redistributions, " << s.tasks_resent
                << " tasks resent, " << s.forced_kills << " forced kills\n";
      std::cout << "pipeline: " << s.pipelined_tasks << " tasks, max inflight "
                << s.max_inflight << "\n";
      std::cout << "link: " << s.link_retransmitted_frames << " retransmits, "
                << s.link_corrupt_dropped << " corrupt dropped, "
                << s.link_duplicates_dropped << " duplicates dropped, "
                << s.faults_injected << " faults injected\n";
    }
    return 0;
  } catch (const std::invalid_argument& e) {
    std::cerr << "score_scheduler: " << e.what() << " (--help for usage)\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "score_scheduler: " << e.what() << "\n";
    return 1;
  }
}
