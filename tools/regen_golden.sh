#!/usr/bin/env bash
# Re-bless the golden-trace expectations under tests/golden/.
#
# The golden suite (tests/test_golden_traces.cpp) fails on ANY byte-level
# drift of the canonical continuous-operation traces. When a commit changes
# behaviour on purpose (new decision rule, different event ordering, cost
# model change), regenerate the expectations with this script, then review
# the `git diff tests/golden/` like any other code change and commit it
# together with the code.
#
# Usage:  tools/regen_golden.sh [build-dir]     (default: ./build)
set -euo pipefail

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

if [ ! -d "$repo_root/$build_dir" ] && [ ! -d "$build_dir" ]; then
  echo "regen_golden: build directory '$build_dir' not found." >&2
  echo "Configure and build first:  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi
cd "$repo_root"

# score_agent serves the multi-process control-plane wire-trace golden.
cmake --build "$build_dir" -j --target test_golden_traces --target score_agent

echo "regen_golden: re-blessing tests/golden/ ..."
SCORE_REGEN_GOLDEN=1 "$build_dir/tests/test_golden_traces"

echo
echo "regen_golden: done. Review the diff before committing:"
git -C "$repo_root" --no-pager diff --stat -- tests/golden/ || true
