#!/usr/bin/env bash
# Format every tracked C++ source with the committed .clang-format, or verify
# formatting without touching the tree.
#
# Usage:
#   tools/format.sh           # rewrite files in place
#   tools/format.sh --check   # exit non-zero when any file needs formatting
#                             # (what the CI `format` job runs)
#
# Override the binary with CLANG_FORMAT=clang-format-18 etc. Keep formatting
# commits separate from functional changes so diffs stay reviewable.
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "format.sh: $CLANG_FORMAT not found (set CLANG_FORMAT=... to override)" >&2
  exit 2
fi

mapfile -t files < <(git ls-files '*.cpp' '*.hpp')
if [ "${#files[@]}" -eq 0 ]; then
  echo "format.sh: no tracked C++ sources found" >&2
  exit 2
fi

if [ "${1:-}" = "--check" ]; then
  "$CLANG_FORMAT" --dry-run --Werror "${files[@]}"
  echo "format.sh: ${#files[@]} files clean"
elif [ "${1:-}" = "" ]; then
  "$CLANG_FORMAT" -i "${files[@]}"
  echo "format.sh: ${#files[@]} files formatted"
else
  echo "usage: tools/format.sh [--check]" >&2
  exit 2
fi
