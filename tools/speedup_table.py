#!/usr/bin/env python3
"""Render the ablation-tokens-threads suite of a score-bench/v1 file as a
Markdown speedup table.

The committed BENCH_results.json trajectory was generated on a 1-CPU
container, where par(n) can only show parity; the CI `remeasure-multicore`
job reruns the ablation on a multi-core runner and uploads this table as an
artifact so the wall-clock-scaling claim of parallel token rounds is backed
by a real measurement (see ROADMAP).

Usage:  python3 tools/speedup_table.py BENCH_file.json [-o speedup.md]
Stdlib only.
"""

from __future__ import annotations

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file", help="score-bench/v1 JSON file")
    parser.add_argument("-o", "--out", help="also write the table here")
    args = parser.parse_args()

    with open(args.file, "r", encoding="utf-8") as f:
        doc = json.load(f)
    rows = [r for r in doc.get("results", [])
            if r.get("suite") == "ablation-tokens-threads"]
    if not rows:
        print(f"speedup_table: no ablation-tokens-threads rows in {args.file}",
              file=sys.stderr)
        return 1

    hw = next((r["hw_threads"] for r in rows if "hw_threads" in r), None)
    lines = [
        "# Parallel token rounds: tokens × threads ablation",
        "",
        f"Measured on a host with hw_threads = {hw:g}." if hw else "",
        "",
        "| scenario | tokens | threads | sim wall (s) | speedup vs par(1) | "
        "reduction (%) | migrations |",
        "|---|---:|---:|---:|---:|---:|---:|",
    ]
    for r in rows:
        speedup = r.get("speedup_vs_par1")
        lines.append(
            f"| {r['scenario']} | {r.get('tokens', 0):g} | "
            f"{r.get('threads', 0):g} | {r.get('sim_wall_s', 0):.3f} | "
            f"{'' if speedup is None else f'{speedup:.2f}x'} | "
            f"{r['cost_reduction_pct']:.2f} | {r['migrations']} |")
    table = "\n".join(line for line in lines if line is not None) + "\n"

    print(table)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(table)
    return 0


if __name__ == "__main__":
    sys.exit(main())
