#!/usr/bin/env bash
# Launch the multi-process control plane — 1 score_scheduler + N score_agent
# daemons over a loopback socket — and differentially check the run against
# the in-process `score_cli --mode distributed` reference: at loss 0 the two
# must print the SAME trace hash.
#
# This is the CI control-plane-integration entry point; the wire trace is
# written next to the logs so it can be uploaded as an artifact on failure.
#
# Usage: tools/control_plane_demo.sh [build-dir] [num-agents] [out-dir] [transport]
#   build-dir   default: build
#   num-agents  default: 4
#   out-dir     default: a fresh mktemp -d (logs, socket, wire trace)
#   transport   unix (default) or tcp — tcp listens on an ephemeral loopback
#               port and the agents parse the bound address from the
#               scheduler log, so runs never collide on a fixed port
set -euo pipefail

build_dir="${1:-build}"
num_agents="${2:-4}"
out_dir="${3:-$(mktemp -d)}"
transport="${4:-unix}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

scheduler="$build_dir/tools/score_scheduler"
agent="$build_dir/tools/score_agent"
cli="$build_dir/tools/score_cli"
for bin in "$scheduler" "$agent" "$cli"; do
  if [ ! -x "$bin" ]; then
    echo "control_plane_demo: $bin not built (cmake --build $build_dir -j)" >&2
    exit 1
  fi
done
mkdir -p "$out_dir"

# Canonical paper-scale world: 128 racks x 5 hosts x 4 slots = 2560 slots.
world_flags=(--racks 128 --vms 1024 --iterations 2)

case "$transport" in
  unix) listen="unix:$out_dir/score.sock" ;;
  tcp)  listen="tcp:127.0.0.1:0" ;;
  *)    echo "control_plane_demo: unknown transport '$transport' (unix|tcp)" >&2
        exit 1 ;;
esac

echo "control_plane_demo: 1 scheduler + $num_agents agents over $transport," \
     "world: ${world_flags[*]}  (logs in $out_dir)"

"$scheduler" --listen "$listen" --agents "$num_agents" \
  --wire-trace "$out_dir/wire.trace" "${world_flags[@]}" \
  > "$out_dir/scheduler.log" 2>&1 &
sched_pid=$!

# The scheduler prints (and flushes) the bound address before the first
# accept — for tcp:...:0 that is the only way to learn the ephemeral port.
connect=""
for _ in $(seq 1 100); do
  connect="$(sed -n 's/^score_scheduler: listening on \([^,]*\),.*/\1/p' \
             "$out_dir/scheduler.log" 2>/dev/null || true)"
  [ -n "$connect" ] && break
  if ! kill -0 "$sched_pid" 2>/dev/null; then
    echo "control_plane_demo: scheduler died before listening" >&2
    cat "$out_dir/scheduler.log" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$connect" ]; then
  echo "control_plane_demo: scheduler never printed its listen address" >&2
  cat "$out_dir/scheduler.log" >&2
  exit 1
fi

agent_pids=()
for i in $(seq 1 "$num_agents"); do
  "$agent" --connect "$connect" --connect-timeout 30 "${world_flags[@]}" \
    > "$out_dir/agent$i.log" 2>&1 &
  agent_pids+=($!)
done

fail=0
wait "$sched_pid" || fail=1
for pid in "${agent_pids[@]}"; do
  wait "$pid" || fail=1
done
if [ "$fail" -ne 0 ]; then
  echo "control_plane_demo: a process exited non-zero" >&2
  tail -n 5 "$out_dir"/*.log >&2
  exit 1
fi

multi_hash="$(sed -n 's/^trace hash: \([0-9a-f]*\).*/\1/p' "$out_dir/scheduler.log")"
if [ -z "$multi_hash" ]; then
  echo "control_plane_demo: scheduler printed no trace hash" >&2
  cat "$out_dir/scheduler.log" >&2
  exit 1
fi

# The in-process reference on the identical world.
"$cli" --mode distributed --trace "${world_flags[@]}" > "$out_dir/inprocess.log"
local_hash="$(sed -n 's/^trace hash: \([0-9a-f]*\).*/\1/p' "$out_dir/inprocess.log")"

grep '^multi-process' "$out_dir/scheduler.log"
echo "control_plane_demo: multi-process hash $multi_hash, in-process hash $local_hash"
if [ "$multi_hash" != "$local_hash" ]; then
  echo "control_plane_demo: TRACE HASH MISMATCH — multi-process run diverged" >&2
  exit 1
fi
echo "control_plane_demo: OK (identical structural traces)"
