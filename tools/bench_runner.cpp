// bench_runner — curated benchmark subset with machine-readable output.
//
// Runs the three entries that anchor the perf trajectory — Fig. 2 token
// convergence, Fig. 3 cost-ratio-over-GA on both topologies, and the
// cost-model micro benchmark — and writes every result as JSON to
// BENCH_results.json (override with --out). Each future PR reruns this and
// diffs against the committed trajectory file to show its perf delta.
//
// Usage:
//   bench_runner [--out FILE] [--quick]
//
//   --quick   shrink the GA normaliser budget so the whole run finishes in
//             a few seconds (CI smoke); ratios are slightly noisier.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "core/token_policy.hpp"

namespace {

using namespace score;

bool g_quick = false;

baselines::GaConfig runner_ga_config() {
  baselines::GaConfig cfg = bench::ga_config();
  if (g_quick) {
    cfg.population = 32;
    cfg.max_generations = 60;
    cfg.stop_window = 10;
  }
  return cfg;
}

// Fig. 2: ratio of migrated VMs per token-passing iteration, canonical tree,
// both policies. The paper's claim: the ratio plummets after iteration 2.
void run_fig2(bench::JsonReport& report) {
  for (const std::string policy_name : {"round-robin", "highest-level-first"}) {
    bench::Stopwatch sw;
    auto s = bench::make_scenario(/*fat_tree=*/false, traffic::Intensity::kSparse);
    core::MigrationEngine engine(*s.model);
    auto policy = core::make_policy(policy_name);

    core::SimConfig cfg;
    cfg.iterations = 5;
    cfg.stop_when_stable = false;
    core::ScoreSimulation sim(engine, *policy, *s.alloc, s.tm);
    const core::SimResult res = sim.run(cfg);

    bench::BenchRecord rec;
    rec.suite = "fig2-convergence";
    rec.scenario = "canonical-tree/" + policy_name;
    rec.wall_time_s = sw.elapsed_s();
    rec.cost_reduction_pct = 100.0 * res.reduction();
    rec.migrations = res.total_migrations;
    for (std::size_t i = 0; i < res.iterations.size(); ++i) {
      rec.metric("migrated_ratio_iter" + std::to_string(i + 1),
                 res.iterations[i].migrated_ratio);
    }
    rec.metric("sim_duration_s", res.duration_s);
    report.add(rec);
    std::cerr << "[fig2] " << rec.scenario << ": reduction "
              << rec.cost_reduction_pct << "%, " << rec.migrations
              << " migrations in " << rec.wall_time_s << "s\n";
  }
}

// Fig. 3: final communication-cost ratio over the GA-approximated optimum,
// canonical tree and fat-tree, sparse intensity (the curated subset — the
// full intensity sweep lives in bench_fig3_{canonical,fattree}).
void run_fig3(bench::JsonReport& report) {
  for (const bool fat_tree : {false, true}) {
    const std::string topo_name = fat_tree ? "fat-tree" : "canonical-tree";
    const std::uint64_t seed = 42;

    bench::Stopwatch ga_sw;
    auto ga_scenario = bench::make_scenario(fat_tree, traffic::Intensity::kSparse, seed);
    baselines::GaOptimizer ga(*ga_scenario.model, runner_ga_config());
    const auto ga_res = ga.optimize(*ga_scenario.alloc, ga_scenario.tm);
    const double opt = ga_res.best_cost;
    const double ga_time = ga_sw.elapsed_s();

    for (const std::string policy_name : {"round-robin", "highest-level-first"}) {
      bench::Stopwatch sw;
      auto s = bench::make_scenario(fat_tree, traffic::Intensity::kSparse, seed);
      core::MigrationEngine engine(*s.model);
      auto policy = core::make_policy(policy_name);
      core::SimConfig cfg;
      cfg.iterations = 8;
      core::ScoreSimulation sim(engine, *policy, *s.alloc, s.tm);
      const core::SimResult res = sim.run(cfg);

      bench::BenchRecord rec;
      rec.suite = "fig3-cost-ratio";
      rec.scenario = topo_name + "/sparse/" + policy_name;
      rec.wall_time_s = sw.elapsed_s();
      rec.cost_reduction_pct = 100.0 * res.reduction();
      rec.migrations = res.total_migrations;
      rec.metric("initial_ratio", opt > 0.0 ? res.initial_cost / opt : 0.0);
      rec.metric("final_ratio", opt > 0.0 ? res.final_cost / opt : 0.0);
      rec.metric("ga_cost", opt);
      rec.metric("ga_time_s", ga_time);
      report.add(rec);
      std::cerr << "[fig3] " << rec.scenario << ": final ratio "
                << (opt > 0.0 ? res.final_cost / opt : 0.0) << " in "
                << rec.wall_time_s << "s\n";
    }
  }
}

// Micro benchmark: the three operations that bound per-token-hold work in
// dom0. Reported as ns/call so regressions show up directly.
void run_micro(bench::JsonReport& report) {
  const std::size_t num_vms = 256;
  topo::CanonicalTreeConfig tcfg;
  tcfg.racks = 64;
  tcfg.hosts_per_rack = 10;
  tcfg.racks_per_pod = 8;
  tcfg.cores = 4;
  topo::CanonicalTree topology(tcfg);
  core::CostModel model(topology, core::LinkWeights::exponential(3));

  traffic::GeneratorConfig gen;
  gen.num_vms = num_vms;
  traffic::TrafficMatrix tm = traffic::generate_traffic(gen);

  util::Rng rng(1);
  core::ServerCapacity cap;
  cap.vm_slots = 8;
  cap.ram_mb = 8 * 256.0;
  cap.cpu_cores = 8.0;
  core::Allocation alloc = baselines::make_allocation(
      topology, cap, num_vms, core::VmSpec{}, baselines::PlacementStrategy::kRandom, rng);
  core::MigrationEngine engine(model);

  const auto time_op = [&](const std::string& name, std::size_t reps,
                           auto&& op) {
    bench::Stopwatch sw;
    double sink = 0.0;
    for (std::size_t i = 0; i < reps; ++i) sink += op(i);
    const double elapsed = sw.elapsed_s();

    bench::BenchRecord rec;
    rec.suite = "micro-cost-model";
    rec.scenario = name;
    rec.wall_time_s = elapsed;
    rec.metric("ns_per_call", 1e9 * elapsed / static_cast<double>(reps));
    rec.metric("calls", static_cast<double>(reps));
    rec.metric("checksum", sink);  // defeats dead-code elimination
    report.add(rec);
    std::cerr << "[micro] " << name << ": "
              << 1e9 * elapsed / static_cast<double>(reps) << " ns/call\n";
  };

  time_op("total_cost", g_quick ? 20 : 200,
          [&](std::size_t) { return model.total_cost(alloc, tm); });
  time_op("migration_delta", g_quick ? 2000 : 20000, [&](std::size_t i) {
    const auto vm = static_cast<core::VmId>(i % num_vms);
    return model.migration_delta(alloc, tm, vm,
                                 (vm * 37) % topology.num_hosts());
  });
  time_op("engine_evaluate", g_quick ? 200 : 2000, [&](std::size_t i) {
    const auto vm = static_cast<core::VmId>(i % num_vms);
    return engine.evaluate(alloc, tm, vm).delta;
  });
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_results.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      g_quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_runner [--out FILE] [--quick]\n";
      return 2;
    }
  }

  score::bench::JsonReport report;
  score::bench::Stopwatch total;
  run_fig2(report);
  run_fig3(report);
  run_micro(report);

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_runner: cannot open " << out_path << " for writing\n";
    return 1;
  }
  report.write(out);
  std::cerr << "wrote " << report.size() << " results to " << out_path
            << " in " << total.elapsed_s() << "s\n";
  return 0;
}
