// bench_runner — curated benchmark subset with machine-readable output.
//
// Runs the entries that anchor the perf trajectory — Fig. 2 token
// convergence, Fig. 3 cost-ratio-over-GA on both topologies, the cost-model
// micro benchmark, and (with --scale paper) the paper-scale §VI scenarios —
// and writes every result as JSON to BENCH_results.json (override with
// --out). Each future PR reruns this and diffs against the committed
// trajectory file via tools/bench_compare.py to show its perf delta.
//
// Usage:
//   bench_runner [--out FILE] [--quick] [--scale default|paper|huge]
//               [--threads N] [--suite NAME]
//               [--mode both|centralized|distributed]
//
//   --quick   shrink the GA normaliser budget and micro rep counts so the
//             whole run finishes in a few seconds (CI smoke); ratios are
//             slightly noisier.
//   --scale   "paper" additionally runs the paper-scale suites: fat-tree
//             k=16 (1024 hosts) and k=32 (8192 hosts), and the canonical
//             tree at 2560 hosts with 16 VM slots per host (§VI), plus the
//             tokens × threads ablation (parallel token rounds on the
//             fat-tree k=16 scenario: wall-clock scaling + cost parity)
//             and the distributed-vs-centralized suite (the end-to-end
//             message-passing runtime against the shared-memory loop:
//             final-cost ratio, rounds, token messages/bytes, loss
//             robustness, trace determinism — all hard-checked).
//             These skip the GA normaliser (intractable at that size) and
//             report absolute reduction plus cached/brute-force cost-oracle
//             timings. "huge" is a superset of "paper": it additionally runs
//             the mega-scale suite — fat-tree k=48 (27648 hosts) and k=64
//             (65536 hosts), and the canonical 1M-VM world (128000 hosts,
//             16 VM slots per host at 50% occupancy) — recording peak-RSS
//             bytes_per_vm and end-to-end ns_per_migration, both hard-gated
//             one-sided. Default: "default" (the fast trajectory subset).
//   --threads max worker threads for the tokens × threads ablation
//             (default 4).
//   --suite   run only one suite: fig2 | fig3 | micro | paper-scale |
//             tokens-threads | dist-vs-centralized | steady-state |
//             streaming-ingest | huge-scale (default: all suites the
//             selected scale includes). The CI multi-core re-measure job uses `--scale
//             paper --suite tokens-threads`. steady-state is the §VI-B
//             continuous-operation suite: VM lifecycle churn over dynamic
//             traffic epochs, distributed re-optimisation per epoch,
//             hard-gated against per-epoch fresh centralized
//             re-optimisation (and trace determinism). streaming-ingest is
//             the flow-delta suite: O(1) fold throughput (gated >= 1e6
//             deltas/sec, folded total == brute-force rebuild) plus
//             drift-triggered streaming runs gated at the <= 1.05 band vs
//             fresh re-optimisation.
//   --mode    restrict the dist-vs-centralized suite to one execution mode
//             (cross-mode hard checks need "both", the default).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench_common.hpp"
#include "core/scenario_io.hpp"
#include "core/token_policy.hpp"
#include "driver/continuous.hpp"
#include "driver/convergence.hpp"
#include "driver/multi_token.hpp"
#include "driver/streaming.hpp"
#include "hypervisor/distributed_runtime.hpp"
#include "traffic/ingest.hpp"
#include "util/exec_policy.hpp"
#include "util/stats.hpp"

namespace {

using namespace score;

bool g_quick = false;
bool g_paper_suite = false;
bool g_huge_suite = false;
std::size_t g_threads = 4;  // --threads: max workers for the tokens ablation
std::string g_mode = "both";  // --mode: dist-vs-centralized restriction

baselines::GaConfig runner_ga_config() {
  baselines::GaConfig cfg = bench::ga_config();
  if (g_quick) {
    cfg.population = 32;
    cfg.max_generations = 60;
    cfg.stop_window = 10;
  }
  return cfg;
}

// Fig. 2: ratio of migrated VMs per token-passing iteration, canonical tree,
// both policies. The paper's claim: the ratio plummets after iteration 2.
void run_fig2(bench::JsonReport& report) {
  for (const std::string policy_name : {"round-robin", "highest-level-first"}) {
    bench::Stopwatch sw;
    auto s = bench::make_scenario(/*fat_tree=*/false, traffic::Intensity::kSparse);
    s.bind_cache();
    core::MigrationEngine engine(*s.model);
    auto policy = core::make_policy(policy_name);

    driver::SimConfig cfg;
    cfg.iterations = 5;
    cfg.stop_when_stable = false;
    driver::ScoreSimulation sim(engine, *policy, *s.alloc, s.tm);
    const driver::SimResult res = sim.run(cfg);

    bench::BenchRecord rec;
    rec.suite = "fig2-convergence";
    rec.scenario = "canonical-tree/" + policy_name;
    rec.wall_time_s = sw.elapsed_s();
    rec.cost_reduction_pct = 100.0 * res.reduction();
    rec.migrations = res.total_migrations;
    for (std::size_t i = 0; i < res.iterations.size(); ++i) {
      rec.metric("migrated_ratio_iter" + std::to_string(i + 1),
                 res.iterations[i].migrated_ratio);
    }
    rec.metric("sim_duration_s", res.duration_s);
    report.add(rec);
    std::cerr << "[fig2] " << rec.scenario << ": reduction "
              << rec.cost_reduction_pct << "%, " << rec.migrations
              << " migrations in " << rec.wall_time_s << "s\n";
  }
}

// Fig. 3: final communication-cost ratio over the GA-approximated optimum,
// canonical tree and fat-tree, sparse intensity (the curated subset — the
// full intensity sweep lives in bench_fig3_{canonical,fattree}).
void run_fig3(bench::JsonReport& report) {
  for (const bool fat_tree : {false, true}) {
    const std::string topo_name = fat_tree ? "fat-tree" : "canonical-tree";
    const std::uint64_t seed = 42;

    bench::Stopwatch ga_sw;
    auto ga_scenario = bench::make_scenario(fat_tree, traffic::Intensity::kSparse, seed);
    baselines::GaOptimizer ga(*ga_scenario.model, runner_ga_config());
    const auto ga_res = ga.optimize(*ga_scenario.alloc, ga_scenario.tm);
    const double opt = ga_res.best_cost;
    const double ga_time = ga_sw.elapsed_s();

    for (const std::string policy_name : {"round-robin", "highest-level-first"}) {
      bench::Stopwatch sw;
      auto s = bench::make_scenario(fat_tree, traffic::Intensity::kSparse, seed);
      s.bind_cache();
      core::MigrationEngine engine(*s.model);
      auto policy = core::make_policy(policy_name);
      driver::SimConfig cfg;
      cfg.iterations = 8;
      driver::ScoreSimulation sim(engine, *policy, *s.alloc, s.tm);
      const driver::SimResult res = sim.run(cfg);

      bench::BenchRecord rec;
      rec.suite = "fig3-cost-ratio";
      rec.scenario = topo_name + "/sparse/" + policy_name;
      rec.wall_time_s = sw.elapsed_s();
      rec.cost_reduction_pct = 100.0 * res.reduction();
      rec.migrations = res.total_migrations;
      rec.metric("initial_ratio", opt > 0.0 ? res.initial_cost / opt : 0.0);
      rec.metric("final_ratio", opt > 0.0 ? res.final_cost / opt : 0.0);
      rec.metric("ga_cost", opt);
      rec.metric("ga_time_s", ga_time);
      report.add(rec);
      std::cerr << "[fig3] " << rec.scenario << ": final ratio "
                << (opt > 0.0 ? res.final_cost / opt : 0.0) << " in "
                << rec.wall_time_s << "s\n";
    }
  }
}

// Micro benchmark: the operations that bound per-token-hold work in dom0,
// plus the cached cost oracle the drivers now run on. "total_cost" measures
// the production path (CachedCostModel, O(1) on the bound pair);
// "total_cost_bruteforce" keeps the Eq. (2) re-walk as the reference;
// "apply_migration" measures the O(degree) incremental fold.
void run_micro(bench::JsonReport& report) {
  const std::size_t num_vms = 256;
  topo::CanonicalTreeConfig tcfg;
  tcfg.racks = 64;
  tcfg.hosts_per_rack = 10;
  tcfg.racks_per_pod = 8;
  tcfg.cores = 4;
  topo::CanonicalTree topology(tcfg);
  core::CachedCostModel model(topology, core::LinkWeights::exponential(3));
  core::CostModel brute(topology, core::LinkWeights::exponential(3));

  traffic::GeneratorConfig gen;
  gen.num_vms = num_vms;
  traffic::TrafficMatrix tm = traffic::generate_traffic(gen);

  util::Rng rng(1);
  core::ServerCapacity cap;
  cap.vm_slots = 8;
  cap.ram_mb = 8 * 256.0;
  cap.cpu_cores = 8.0;
  core::Allocation alloc = baselines::make_allocation(
      topology, cap, num_vms, core::VmSpec{}, baselines::PlacementStrategy::kRandom, rng);
  model.bind(alloc, tm);
  core::MigrationEngine engine(model);

  // Rep counts are whole multiples of the per-VM cycle (num_vms, or 2 for
  // the ping-pong), so checksum/calls is invariant across --quick and full
  // runs — that per-call checksum is what the CI gate compares.
  const auto time_op = [&](const std::string& name, std::size_t reps,
                           auto&& op) {
    // Untimed warmup (even count, preserving the ping-pong parity) so cold
    // caches don't dominate the small --quick rep counts.
    const std::size_t warmup = std::max<std::size_t>(2, reps / 10) & ~std::size_t{1};
    double sink = 0.0;
    for (std::size_t i = 0; i < warmup; ++i) sink += op(i);
    sink = 0.0;
    bench::Stopwatch sw;
    for (std::size_t i = 0; i < reps; ++i) sink += op(i);
    const double elapsed = sw.elapsed_s();

    bench::BenchRecord rec;
    rec.suite = "micro-cost-model";
    rec.scenario = name;
    rec.wall_time_s = elapsed;
    rec.metric("ns_per_call", 1e9 * elapsed / static_cast<double>(reps));
    rec.metric("calls", static_cast<double>(reps));
    rec.metric("checksum", sink);  // defeats dead-code elimination
    rec.metric("checksum_per_call", sink / static_cast<double>(reps));
    report.add(rec);
    std::cerr << "[micro] " << name << ": "
              << 1e9 * elapsed / static_cast<double>(reps) << " ns/call\n";
  };

  time_op("total_cost", g_quick ? 8 * num_vms : 80 * num_vms,
          [&](std::size_t) { return model.total_cost(alloc, tm); });
  time_op("total_cost_bruteforce", g_quick ? 20 : 200,
          [&](std::size_t) { return brute.total_cost(alloc, tm); });
  time_op("migration_delta", g_quick ? 8 * num_vms : 80 * num_vms,
          [&](std::size_t i) {
    const auto vm = static_cast<core::VmId>(i % num_vms);
    return model.migration_delta(alloc, tm, vm,
                                 (vm * 37) % topology.num_hosts());
  });
  time_op("engine_evaluate", g_quick ? num_vms : 8 * num_vms,
          [&](std::size_t i) {
    const auto vm = static_cast<core::VmId>(i % num_vms);
    return engine.evaluate(alloc, tm, vm).delta;
  });

  // Ping-pong one VM between its home server and a feasible alternative so
  // every call commits a real move through the incremental path. Even rep
  // counts restore the initial placement.
  {
    const core::VmId vm = 0;
    const core::ServerId home = alloc.server_of(vm);
    core::ServerId away = core::kInvalidServer;
    for (core::ServerId s = 0; s < topology.num_hosts(); ++s) {
      if (s != home && alloc.can_host(s, alloc.spec(vm))) {
        away = s;
        break;
      }
    }
    if (away != core::kInvalidServer) {
      time_op("apply_migration", g_quick ? 2000 : 20000, [&](std::size_t i) {
        model.apply_migration(alloc, tm, vm, i % 2 == 0 ? away : home);
        return model.total_cost(alloc, tm);
      });
    }
  }
}

// Paper §VI fleet shared by the paper-scale suite and the tokens × threads
// ablation: 16 VM slots per host, fleet at 50% slot occupancy, one fixed
// workload/placement seed — keeping both suites on the *same* scenario so
// their rows in BENCH_results.json stay cross-comparable.
struct PaperFleet {
  core::ServerCapacity cap;
  std::size_t num_vms;
  traffic::TrafficMatrix tm;
  core::Allocation alloc;
};

PaperFleet make_paper_fleet(const topo::Topology& topology) {
  core::ServerCapacity cap;
  cap.vm_slots = 16;
  cap.ram_mb = 16 * 256.0;
  cap.cpu_cores = 16.0;
  const std::size_t num_vms = topology.num_hosts() * cap.vm_slots / 2;

  traffic::GeneratorConfig gen;
  gen.num_vms = num_vms;
  gen.mean_service_size = 24;
  gen.intra_service_degree = 4.0;
  gen.cross_service_prob = 0.3;
  gen.seed = 42;
  traffic::TrafficMatrix tm = traffic::generate_traffic(gen);

  util::Rng rng(43);
  core::Allocation alloc = baselines::make_allocation(
      topology, cap, num_vms, core::VmSpec{},
      baselines::PlacementStrategy::kRandom, rng);
  return {cap, num_vms, std::move(tm), std::move(alloc)};
}

// Tokens × threads ablation (paper suite): the wall-clock scaling claim of
// parallel token rounds. Fat-tree k=16 at paper scale, k concurrent tokens
// walking disjoint partitions under seq / par(1) / par(2) / par(n) execution
// policies. Results are policy-invariant by construction (the determinism
// tests enforce it), so every scenario must report the *same* final cost —
// checked here, hard failure on divergence — while sim_wall_s shrinks with
// the thread count. speedup_vs_par1 is the headline metric.
bool run_tokens_threads(bench::JsonReport& report) {
  topo::FatTree topology(topo::FatTreeConfig{.k = 16});
  const PaperFleet fleet = make_paper_fleet(topology);
  const traffic::TrafficMatrix& tm = fleet.tm;
  const std::size_t num_vms = fleet.num_vms;

  // --threads caps the widest policy: never spawn more workers than asked.
  std::vector<util::ExecPolicy> policies = {util::ExecPolicy::seq(),
                                            util::ExecPolicy::par(1)};
  if (g_threads >= 2) policies.push_back(util::ExecPolicy::par(2));
  if (g_threads > 2) policies.push_back(util::ExecPolicy::par(g_threads));

  bool ok = true;
  for (const std::size_t tokens : {4u, 16u}) {
    double seq_final_cost = 0.0;
    double par1_wall_s = 0.0;
    for (const util::ExecPolicy& policy : policies) {
      core::Allocation alloc = fleet.alloc;
      core::CachedCostModel model(topology, core::LinkWeights::exponential(3));
      model.bind(alloc, tm);
      core::MigrationEngine engine(model);

      driver::MultiTokenConfig cfg;
      cfg.tokens = tokens;
      cfg.iterations = 2;  // fixed pass count: wall-clock comparable across rows
      cfg.stop_when_stable = false;
      cfg.policy = policy;

      bench::Stopwatch sim_sw;
      driver::MultiTokenSimulation sim(engine, alloc, tm);
      const driver::SimResult res = sim.run(cfg);
      const double sim_wall = sim_sw.elapsed_s();

      if (policy == util::ExecPolicy::seq()) seq_final_cost = res.final_cost;
      if (policy == util::ExecPolicy::par(1)) par1_wall_s = sim_wall;

      // Cost-reduction parity: every policy must land on the sequential
      // final cost (bit-identical modulo summation rounding).
      const double rel = std::abs(res.final_cost - seq_final_cost) /
                         (1.0 + std::abs(seq_final_cost));
      if (rel > 1e-9) {
        std::cerr << "[tokens-threads] PARITY FAILURE: tokens=" << tokens
                  << " policy=" << policy.name() << " final cost "
                  << res.final_cost << " != sequential " << seq_final_cost
                  << " (rel " << rel << ")\n";
        ok = false;
      }

      bench::BenchRecord rec;
      rec.suite = "ablation-tokens-threads";
      rec.scenario = "fat-tree-k16/tokens" + std::to_string(tokens) + "/" +
                     policy.name();
      rec.wall_time_s = sim_wall;
      rec.cost_reduction_pct = 100.0 * res.reduction();
      rec.migrations = res.total_migrations;
      rec.metric("num_vms", static_cast<double>(num_vms));
      rec.metric("tokens", static_cast<double>(tokens));
      rec.metric("threads", policy.parallel()
                                ? static_cast<double>(policy.requested_threads())
                                : 0.0);
      // Hardware context: on a single-CPU host par(n) can only show parity
      // (speedup_vs_par1 ~ 1); the scaling claim needs hw_threads > 1.
      rec.metric("hw_threads",
                 static_cast<double>(std::thread::hardware_concurrency()));
      rec.metric("passes", static_cast<double>(res.iterations.size()));
      rec.metric("sim_wall_s", sim_wall);
      rec.metric("sim_duration_s", res.duration_s);
      rec.metric("final_cost", res.final_cost);
      if (policy.parallel() && policy.requested_threads() > 1 && par1_wall_s > 0.0) {
        rec.metric("speedup_vs_par1", par1_wall_s / sim_wall);
      }
      report.add(rec);
      std::cerr << "[tokens-threads] " << rec.scenario << ": " << sim_wall
                << "s wall, reduction " << rec.cost_reduction_pct << "%, "
                << rec.migrations << " migrations"
                << (policy.parallel() && policy.requested_threads() > 1 &&
                            par1_wall_s > 0.0
                        ? " (speedup vs par(1): " +
                              std::to_string(par1_wall_s / sim_wall) + "x)"
                        : "")
                << "\n";
    }
  }
  return ok;
}

// Paper-scale suite (§VI topologies): short Round-Robin runs plus cost-
// oracle timings at the sizes the paper evaluates. No GA normaliser — the
// reduction is reported against the initial random placement.
void run_paper_scale(bench::JsonReport& report) {
  struct Spec {
    std::string name;
    std::unique_ptr<topo::Topology> topology;
  };
  std::vector<Spec> specs;
  specs.push_back({"canonical-2560", std::make_unique<topo::CanonicalTree>(
                                         topo::CanonicalTreeConfig::paper_scale())});
  specs.push_back({"fat-tree-k16", std::make_unique<topo::FatTree>(
                                       topo::FatTreeConfig{.k = 16})});
  specs.push_back({"fat-tree-k32", std::make_unique<topo::FatTree>(
                                       topo::FatTreeConfig{.k = 32})});

  for (auto& spec : specs) {
    bench::Stopwatch sw;
    const topo::Topology& topology = *spec.topology;
    core::CachedCostModel model(topology, core::LinkWeights::exponential(3));
    core::CostModel brute(topology, core::LinkWeights::exponential(3));

    PaperFleet fleet = make_paper_fleet(topology);
    const std::size_t num_vms = fleet.num_vms;
    traffic::TrafficMatrix& tm = fleet.tm;
    core::Allocation& alloc = fleet.alloc;
    model.bind(alloc, tm);

    core::MigrationEngine engine(model);
    core::RoundRobinPolicy rr;
    driver::SimConfig cfg;
    // Fixed iteration count even under --quick: the reduction and migration
    // numbers stay comparable across runs (only the timing reps shrink).
    cfg.iterations = 2;
    cfg.stop_when_stable = false;
    driver::ScoreSimulation sim(engine, rr, alloc, tm);

    bench::Stopwatch sim_sw;
    const driver::SimResult res = sim.run(cfg);
    const double sim_wall = sim_sw.elapsed_s();

    // Cost-oracle timings at this scale, post-convergence state.
    const std::size_t cached_reps = g_quick ? 2000 : 20000;
    bench::Stopwatch cached_sw;
    double sink = 0.0;
    for (std::size_t i = 0; i < cached_reps; ++i) sink += model.total_cost(alloc, tm);
    const double cached_ns = 1e9 * cached_sw.elapsed_s() / static_cast<double>(cached_reps);
    const std::size_t brute_reps = g_quick ? 2 : 5;
    bench::Stopwatch brute_sw;
    for (std::size_t i = 0; i < brute_reps; ++i) sink += brute.total_cost(alloc, tm);
    const double brute_ns = 1e9 * brute_sw.elapsed_s() / static_cast<double>(brute_reps);

    bench::BenchRecord rec;
    rec.suite = "paper-scale";
    rec.scenario = spec.name;
    rec.wall_time_s = sw.elapsed_s();
    rec.cost_reduction_pct = 100.0 * res.reduction();
    rec.migrations = res.total_migrations;
    rec.metric("num_hosts", static_cast<double>(topology.num_hosts()));
    rec.metric("num_vms", static_cast<double>(num_vms));
    rec.metric("iterations", static_cast<double>(res.iterations.size()));
    rec.metric("sim_wall_s", sim_wall);
    rec.metric("total_cost_cached_ns", cached_ns);
    rec.metric("total_cost_bruteforce_ns", brute_ns);
    // `calls` keys the gate's raw-checksum guard: --quick shrinks the rep
    // counts, so mismatched runs skip the (rep-dependent) checksum.
    rec.metric("calls", static_cast<double>(cached_reps + brute_reps));
    rec.metric("checksum", sink);
    report.add(rec);
    std::cerr << "[paper-scale] " << rec.scenario << ": " << topology.num_hosts()
              << " hosts, " << num_vms << " VMs, reduction "
              << rec.cost_reduction_pct << "% in " << sim_wall
              << "s sim (cached total_cost " << cached_ns << " ns, brute "
              << brute_ns << " ns)\n";
  }
}

// Distributed-vs-centralized suite (paper suite): the paper's headline claim
// quantified end to end. The message-passing dom0 runtime — deciding from
// flow-table measurements and location/capacity probes only — must land
// within 1% of the centralized shared-memory loop's final cost on the §VI
// topologies, stay there under 5% control-message loss (probe timeouts +
// token retransmission), and reproduce its exact wire trace for a fixed
// seed. All three properties are hard checks: divergence fails the run.
bool run_dist_vs_centralized(bench::JsonReport& report) {
  struct Spec {
    std::string name;
    std::unique_ptr<topo::Topology> topology;
  };
  std::vector<Spec> specs;
  specs.push_back({"canonical-2560", std::make_unique<topo::CanonicalTree>(
                                         topo::CanonicalTreeConfig::paper_scale())});
  specs.push_back({"fat-tree-k16", std::make_unique<topo::FatTree>(
                                       topo::FatTreeConfig{.k = 16})});

  constexpr std::size_t kMaxRounds = 8;
  constexpr double kRatioTolerance = 0.01;
  bool ok = true;

  for (auto& spec : specs) {
    const topo::Topology& topology = *spec.topology;
    const PaperFleet fleet = make_paper_fleet(topology);

    driver::ConvergenceReport central;
    if (g_mode != "distributed") {
      core::Allocation alloc = fleet.alloc;
      core::CachedCostModel model(topology, core::LinkWeights::exponential(3));
      model.bind(alloc, fleet.tm);
      core::MigrationEngine engine(model);
      core::RoundRobinPolicy rr;
      driver::SimConfig cfg;
      cfg.iterations = kMaxRounds;
      bench::Stopwatch sw;
      driver::ScoreSimulation sim(engine, rr, alloc, fleet.tm);
      central = driver::summarize(sim.run(cfg));

      bench::BenchRecord rec;
      rec.suite = "distributed-vs-centralized";
      rec.scenario = spec.name + "/centralized";
      rec.wall_time_s = sw.elapsed_s();
      rec.cost_reduction_pct = 100.0 * central.reduction();
      rec.migrations = central.migrations;
      rec.metric("num_hosts", static_cast<double>(topology.num_hosts()));
      rec.metric("num_vms", static_cast<double>(fleet.num_vms));
      rec.metric("rounds_to_convergence", static_cast<double>(central.rounds));
      rec.metric("final_cost", central.final_cost);
      rec.metric("sim_duration_s", central.duration_s);
      report.add(rec);
      std::cerr << "[dist-vs-cent] " << rec.scenario << ": reduction "
                << rec.cost_reduction_pct << "% in " << central.rounds
                << " rounds (" << rec.wall_time_s << "s wall)\n";
    }

    if (g_mode == "centralized") continue;

    const auto run_distributed = [&](double loss_rate,
                                     hypervisor::RuntimeResult& out) {
      core::Allocation alloc = fleet.alloc;
      core::CachedCostModel model(topology, core::LinkWeights::exponential(3));
      model.bind(alloc, fleet.tm);
      hypervisor::RuntimeConfig rcfg;
      rcfg.policy = "round-robin";
      rcfg.iterations = kMaxRounds;
      rcfg.message_loss_rate = loss_rate;
      rcfg.retransmit_timeout_s = 30.0;  // > decision + probes + one transfer
      bench::Stopwatch sw;
      hypervisor::DistributedScoreRuntime runtime(model, alloc, fleet.tm, rcfg);
      out = runtime.run();
      return sw.elapsed_s();
    };

    for (const double loss : {0.0, 0.05}) {
      hypervisor::RuntimeResult res;
      const double wall = run_distributed(loss, res);
      const driver::ConvergenceReport rep = res.report();

      bench::BenchRecord rec;
      rec.suite = "distributed-vs-centralized";
      rec.scenario = spec.name +
                     (loss == 0.0 ? "/distributed" : "/distributed-loss5");
      rec.wall_time_s = wall;
      rec.cost_reduction_pct = 100.0 * rep.reduction();
      rec.migrations = rep.migrations;
      rec.metric("num_hosts", static_cast<double>(topology.num_hosts()));
      rec.metric("num_vms", static_cast<double>(fleet.num_vms));
      rec.metric("rounds_to_convergence", static_cast<double>(rep.rounds));
      rec.metric("final_cost", rep.final_cost);
      rec.metric("sim_duration_s", rep.duration_s);
      rec.metric("token_messages", static_cast<double>(rep.token_messages));
      rec.metric("token_bytes", static_cast<double>(rep.token_bytes));
      rec.metric("control_messages", static_cast<double>(rep.control_messages));
      rec.metric("control_bytes", static_cast<double>(rep.control_bytes));
      rec.metric("messages_lost", static_cast<double>(res.messages_lost));
      rec.metric("token_retransmits", static_cast<double>(res.token_reinjections));
      rec.metric("probe_timeouts", static_cast<double>(res.probe_timeouts));
      rec.metric("migrated_mb", res.migrated_mb);
      double ratio = 0.0;
      if (g_mode == "both" && central.final_cost > 0.0) {
        ratio = rep.final_cost / central.final_cost;
        rec.metric("final_cost_ratio_vs_centralized", ratio);
        // One-sided: distributed must not end more than 1% above the
        // centralized final cost. Ending *below* it is fine — under loss,
        // token retransmissions grant some VMs extra holds, which can only
        // find additional strictly cost-reducing moves.
        if (ratio - 1.0 > kRatioTolerance) {
          std::cerr << "[dist-vs-cent] CONVERGENCE FAILURE: " << rec.scenario
                    << " final cost " << rep.final_cost << " vs centralized "
                    << central.final_cost << " (ratio " << ratio
                    << ", tolerance " << kRatioTolerance << ")\n";
          ok = false;
        }
      }
      report.add(rec);
      std::cerr << "[dist-vs-cent] " << rec.scenario << ": reduction "
                << rec.cost_reduction_pct << "% in " << rep.rounds
                << " rounds, " << rep.token_messages << " token msgs ("
                << rep.token_bytes << " B)"
                << (ratio > 0.0
                        ? ", ratio vs centralized " + std::to_string(ratio)
                        : std::string())
                << " (" << wall << "s wall)\n";

      // Determinism seam: the loss-free run must reproduce its wire trace
      // bit for bit under the same seed.
      if (loss == 0.0) {
        hypervisor::RuntimeResult repeat;
        run_distributed(0.0, repeat);
        if (repeat.trace_hash != res.trace_hash ||
            repeat.final_cost != res.final_cost) {
          std::cerr << "[dist-vs-cent] DETERMINISM FAILURE: " << spec.name
                    << " trace hash " << std::hex << res.trace_hash << " vs "
                    << repeat.trace_hash << std::dec << "\n";
          ok = false;
        }
      }
    }
  }
  return ok;
}

// Steady-state suite (paper suite): §VI-B continuous operation quantified.
// The world churns — tenants arrive and depart while hotspots drift across
// traffic epochs — and the *distributed* runtime re-runs token rounds each
// epoch from the carried (drifted) state. The hard gate: every epoch's
// steady-state cost must stay within kSteadyBand of a fresh centralized
// re-optimisation of the same epoch (the paper's stability claim — tracking
// churn incrementally is as good as starting over). A fixed lifecycle seed
// must also reproduce the event timeline and structural trace hash exactly
// (checked by a second run on the fat-tree scenario).
bool run_steady_state(bench::JsonReport& report) {
  struct Spec {
    std::string name;
    std::unique_ptr<topo::Topology> topology;
  };
  std::vector<Spec> specs;
  specs.push_back({"canonical-2560", std::make_unique<topo::CanonicalTree>(
                                         topo::CanonicalTreeConfig::paper_scale())});
  specs.push_back({"fat-tree-k16", std::make_unique<topo::FatTree>(
                                       topo::FatTreeConfig{.k = 16})});

  // One-sided band: continued cost may beat the fresh reference (carried
  // state is a head start) but must not exceed it by more than 5%.
  constexpr double kSteadyBand = 0.05;
  bool ok = true;

  for (auto& spec : specs) {
    const topo::Topology& topology = *spec.topology;
    for (const traffic::Intensity intensity :
         {traffic::Intensity::kSparse, traffic::Intensity::kDense}) {
      driver::ContinuousConfig cfg;
      cfg.server_capacity.vm_slots = 16;
      cfg.server_capacity.ram_mb = 16 * 256.0;
      cfg.server_capacity.cpu_cores = 16.0;
      cfg.generator.num_vms = topology.num_hosts() * cfg.server_capacity.vm_slots / 2;
      cfg.generator.mean_service_size = 24;
      cfg.generator.intra_service_degree = 4.0;
      cfg.generator.cross_service_prob = 0.3;
      cfg.generator.seed = 42;
      cfg.dynamics.seed = 43;
      cfg.intensity_scale = traffic::intensity_scale(intensity);
      cfg.epochs = g_quick ? 2 : 4;
      cfg.tenant_vms = 32;
      cfg.initial_active_fraction = 0.8;
      cfg.arrival_prob = 0.3;
      cfg.departure_prob = 0.1;
      cfg.lifecycle_seed = 77;
      cfg.iterations_per_epoch = 4;
      cfg.reopt_iterations = 8;
      cfg.mode = "distributed";
      cfg.runtime.retransmit_timeout_s = 30.0;
      // Nonzero Theorem-1 migration cost: with c_m = 0 every decision is
      // scale-invariant and the intensity sweep would be a no-op. At ×1 this
      // prunes marginal moves; at ×50 almost every win clears it.
      cfg.engine.migration_cost = 1e6;

      bench::Stopwatch sw;
      driver::ContinuousEngine engine(topology, cfg);
      const driver::SteadyStateReport res = engine.run();
      const double wall = sw.elapsed_s();

      double initial_cost = 0.0, final_cost = 0.0;
      for (const driver::EpochReport& er : res.epochs) {
        if (er.epoch == 0) initial_cost = er.cost_before;
        final_cost = er.cost_after;
        // Epoch 0 is the cold start from a fresh random placement — the
        // steady-state claim begins once the system has converged, so the
        // band gates every epoch after it (epoch 0 is still reported).
        if (er.epoch >= 1 && er.cost_ratio() - 1.0 > kSteadyBand) {
          std::cerr << "[steady-state] BAND FAILURE: " << spec.name << "/"
                    << traffic::intensity_name(intensity) << " epoch "
                    << er.epoch << " cost " << er.cost_after
                    << " vs fresh re-opt " << er.fresh_cost << " (ratio "
                    << er.cost_ratio() << ", band " << 1.0 + kSteadyBand
                    << ")\n";
          ok = false;
        }
      }

      bench::BenchRecord rec;
      rec.suite = "steady-state";
      rec.scenario =
          spec.name + "/" + traffic::intensity_name(intensity) + "/distributed";
      rec.wall_time_s = wall;
      rec.cost_reduction_pct =
          initial_cost > 0.0 ? 100.0 * (1.0 - final_cost / initial_cost) : 0.0;
      rec.migrations = res.total_migrations();
      rec.metric("num_hosts", static_cast<double>(topology.num_hosts()));
      rec.metric("world_vms", static_cast<double>(cfg.generator.num_vms));
      rec.metric("epochs", static_cast<double>(res.epochs.size()));
      rec.metric("lifecycle_events", static_cast<double>(res.world.timeline.size()));
      rec.metric("mean_cost_ratio_vs_reopt", res.mean_cost_ratio());
      rec.metric("max_cost_ratio_vs_reopt", res.max_cost_ratio());
      double steady_max = 0.0;
      for (const driver::EpochReport& er : res.epochs) {
        if (er.epoch >= 1) steady_max = std::max(steady_max, er.cost_ratio());
      }
      rec.metric("max_cost_ratio_steady", steady_max);  // the gated value
      rec.metric("migrations_per_epoch",
                 static_cast<double>(res.total_migrations()) /
                     static_cast<double>(res.epochs.size()));
      rec.metric("migrated_mb", res.total_migrated_mb());
      for (const driver::EpochReport& er : res.epochs) {
        rec.metric("cost_ratio_epoch" + std::to_string(er.epoch), er.cost_ratio());
        rec.metric("reconverge_rounds_epoch" + std::to_string(er.epoch),
                   static_cast<double>(er.rounds));
      }
      report.add(rec);
      std::cerr << "[steady-state] " << rec.scenario << ": mean ratio "
                << res.mean_cost_ratio() << " (max " << res.max_cost_ratio()
                << "), " << res.total_migrations() << " migrations, "
                << res.world.timeline.size() << " events in " << wall
                << "s wall\n";

      // Determinism seam: one re-run on the smaller topology must reproduce
      // the event timeline and the structural trace hash bit for bit.
      if (spec.name == "fat-tree-k16" &&
          intensity == traffic::Intensity::kSparse) {
        driver::ContinuousEngine repeat_engine(topology, cfg);
        const driver::SteadyStateReport repeat = repeat_engine.run();
        if (repeat.trace_hash != res.trace_hash ||
            !(repeat.world.timeline == res.world.timeline)) {
          std::cerr << "[steady-state] DETERMINISM FAILURE: " << rec.scenario
                    << " trace hash " << std::hex << res.trace_hash << " vs "
                    << repeat.trace_hash << std::dec << "\n";
          ok = false;
        }
      }
    }
  }
  return ok;
}

// Streaming-ingest suite (paper suite): the flow-delta API quantified.
//
// Fold throughput (canonical-2560): pre-generated FlowDeltaBatches applied
// to a live matrix whose bound CachedCostModel folds each delta through the
// TrafficObserver seam. Hard gates: >= 1e6 folded deltas/sec, the folded
// Eq. (2) total must equal a brute-force rebuild (rel <= 1e-7), and the
// whole stream must cause zero rebuilds beyond the initial bind.
//
// Drift-triggered runs (canonical-2560 + fat-tree-k16): the full streaming
// engine — ingest thread, O(1) folds, re-optimisation only on cost drift.
// Hard gate: every triggered re-opt (and the final state) lands within the
// <= 1.05 band of a fresh per-event re-optimisation; headline metrics are
// the re-opt count and deltas folded per re-opt.
bool run_streaming_ingest(bench::JsonReport& report) {
  bool ok = true;

  // ---- fold throughput ------------------------------------------------------
  {
    topo::CanonicalTree topology(topo::CanonicalTreeConfig::paper_scale());
    PaperFleet fleet = make_paper_fleet(topology);
    traffic::TrafficMatrix& tm = fleet.tm;
    core::CachedCostModel model(topology, core::LinkWeights::exponential(3));
    core::CostModel brute(topology, core::LinkWeights::exponential(3));
    model.bind(fleet.alloc, tm);

    traffic::FlowEventConfig ecfg;
    ecfg.events_per_tick = 4096;
    ecfg.seed = 97;
    traffic::FlowEventStream stream(tm, ecfg);
    const std::size_t num_batches = g_quick ? 32 : 256;
    std::vector<traffic::FlowDeltaBatch> batches;
    batches.reserve(num_batches);
    std::uint64_t updates = 0;
    for (std::size_t i = 0; i < num_batches; ++i) {
      batches.push_back(stream.next_batch());
      updates += batches.back().size();
    }

    const std::uint64_t rebuilds_before = model.rebuilds();
    const std::uint64_t folded_before = model.deltas_folded();
    std::vector<double> batch_ns;
    batch_ns.reserve(batches.size());
    bench::Stopwatch sw;
    for (const traffic::FlowDeltaBatch& batch : batches) {
      bench::Stopwatch batch_sw;
      tm.apply(batch);
      batch_ns.push_back(batch_sw.elapsed_s() * 1e9);
    }
    const double folded_total = model.total_cost(fleet.alloc, tm);
    const double elapsed = sw.elapsed_s();

    const double updates_per_sec =
        elapsed > 0.0 ? static_cast<double>(updates) / elapsed : 0.0;
    const double brute_total = brute.total_cost(fleet.alloc, tm);
    const double rel = std::abs(folded_total - brute_total) /
                       (1.0 + std::abs(brute_total));
    const std::uint64_t extra_rebuilds = model.rebuilds() - rebuilds_before;
    const std::uint64_t folded = model.deltas_folded() - folded_before;

    if (updates_per_sec < 1e6) {
      std::cerr << "[streaming-ingest] THROUGHPUT FAILURE: " << updates_per_sec
                << " folded deltas/sec < 1e6\n";
      ok = false;
    }
    if (rel > 1e-7) {
      std::cerr << "[streaming-ingest] FOLD DIVERGENCE: folded total "
                << folded_total << " vs brute-force " << brute_total
                << " (rel " << rel << " > 1e-7)\n";
      ok = false;
    }
    if (extra_rebuilds != 0) {
      std::cerr << "[streaming-ingest] REBUILD FAILURE: " << extra_rebuilds
                << " cache rebuilds on the pure-delta ingest path\n";
      ok = false;
    }

    bench::BenchRecord rec;
    rec.suite = "streaming-ingest";
    rec.scenario = "canonical-2560/fold-throughput";
    rec.wall_time_s = elapsed;
    rec.metric("num_vms", static_cast<double>(fleet.num_vms));
    rec.metric("batches", static_cast<double>(num_batches));
    rec.metric("updates", static_cast<double>(updates));
    rec.metric("updates_per_sec", updates_per_sec);
    rec.metric("ns_per_update", elapsed > 0.0
                                    ? 1e9 * elapsed / static_cast<double>(updates)
                                    : 0.0);
    rec.metric("deltas_folded", static_cast<double>(folded));
    rec.metric("extra_rebuilds", static_cast<double>(extra_rebuilds));
    rec.metric("fold_vs_brute_rel", rel);
    // Per-batch apply latency: the tail is what bounds staleness under load.
    rec.metric("fold_p50_ns", util::percentile(batch_ns, 50.0));
    rec.metric("fold_p99_ns", util::percentile(batch_ns, 99.0));
    // Rep-dependent: only comparable at equal `calls` (the gate skips it
    // otherwise, e.g. --quick vs full).
    rec.metric("calls", static_cast<double>(updates));
    rec.metric("checksum", folded_total);
    report.add(rec);
    std::cerr << "[streaming-ingest] fold-throughput: " << updates
              << " deltas folded at " << updates_per_sec
              << "/s (rel vs brute " << rel << ", extra rebuilds "
              << extra_rebuilds << ")\n";
  }

  // ---- drift-triggered streaming runs --------------------------------------
  struct Spec {
    std::string name;
    std::unique_ptr<topo::Topology> topology;
  };
  std::vector<Spec> specs;
  specs.push_back({"canonical-2560", std::make_unique<topo::CanonicalTree>(
                                         topo::CanonicalTreeConfig::paper_scale())});
  specs.push_back({"fat-tree-k16", std::make_unique<topo::FatTree>(
                                       topo::FatTreeConfig{.k = 16})});
  constexpr double kDriftBand = 0.05;

  for (auto& spec : specs) {
    const topo::Topology& topology = *spec.topology;
    driver::StreamingConfig cfg;
    cfg.server_capacity.vm_slots = 16;
    cfg.server_capacity.ram_mb = 16 * 256.0;
    cfg.server_capacity.cpu_cores = 16.0;
    cfg.generator.num_vms =
        topology.num_hosts() * cfg.server_capacity.vm_slots / 2;
    cfg.generator.mean_service_size = 24;
    cfg.generator.intra_service_degree = 4.0;
    cfg.generator.cross_service_prob = 0.3;
    cfg.generator.seed = 42;
    cfg.placement_seed = 43;
    // Equal churn intensity per VM across topologies (0.5 events/VM/tick):
    // a fixed absolute rate under-drives large fleets — drift never crosses
    // the trigger threshold while accumulated mis-placement still drifts the
    // fleet out of the fresh-re-opt band.
    cfg.events.events_per_tick = cfg.generator.num_vms / 2;
    cfg.events.seed = 97;
    // Quick mode still needs enough ticks for drift to cross the trigger
    // threshold on the big fleet (3 events/VM total at 6 ticks).
    cfg.ticks = g_quick ? 6 : 12;
    // Bounded ingest: the producer easily outruns a consumer that stops to
    // re-optimise, so backpressure is what keeps the backlog (and staleness)
    // finite. The queue's high-water mark is hard-gated below.
    cfg.queue_capacity = 4;
    cfg.drift_threshold = 0.05;
    cfg.tokens = 4;
    // Match the re-opt budget to the fresh reference's: the band compares
    // steady-state quality, not optimiser strength (stop_when_stable ends
    // converged runs early either way).
    cfg.iterations_per_reopt = 8;
    cfg.fresh_reference = true;
    cfg.reopt_iterations = 8;

    bench::Stopwatch sw;
    driver::StreamingEngine engine(topology, cfg);
    const driver::StreamingReport res = engine.run();
    const double wall = sw.elapsed_s();

    if (res.max_cost_ratio() - 1.0 > kDriftBand) {
      std::cerr << "[streaming-ingest] BAND FAILURE: " << spec.name
                << " max cost ratio " << res.max_cost_ratio() << " vs band "
                << 1.0 + kDriftBand << "\n";
      ok = false;
    }
    // Backpressure gate: a bounded queue's depth can never exceed its
    // capacity — a violation means push() stopped blocking on full.
    if (res.max_queue_depth > cfg.queue_capacity) {
      std::cerr << "[streaming-ingest] BACKPRESSURE FAILURE: " << spec.name
                << " max queue depth " << res.max_queue_depth
                << " > capacity " << cfg.queue_capacity << "\n";
      ok = false;
    }

    std::size_t migrations = 0;
    for (const driver::ReoptEvent& ev : res.reopts) migrations += ev.migrations;

    bench::BenchRecord rec;
    rec.suite = "streaming-ingest";
    rec.scenario = spec.name + "/drift-trigger";
    rec.wall_time_s = wall;
    rec.cost_reduction_pct =
        res.initial_cost > 0.0
            ? 100.0 * (1.0 - res.final_cost / res.initial_cost)
            : 0.0;
    rec.migrations = migrations;
    rec.metric("num_hosts", static_cast<double>(topology.num_hosts()));
    rec.metric("num_vms", static_cast<double>(cfg.generator.num_vms));
    rec.metric("ticks", static_cast<double>(res.ticks));
    rec.metric("deltas_applied", static_cast<double>(res.deltas_applied));
    rec.metric("deltas_folded", static_cast<double>(res.deltas_folded));
    rec.metric("cache_rebuilds", static_cast<double>(res.cache_rebuilds));
    rec.metric("queue_capacity", static_cast<double>(cfg.queue_capacity));
    rec.metric("max_queue_depth", static_cast<double>(res.max_queue_depth));
    rec.metric("reopts", static_cast<double>(res.reopts.size()));
    rec.metric("deltas_per_reopt", res.deltas_per_reopt());
    rec.metric("updates_per_sec",
               wall > 0.0 ? static_cast<double>(res.deltas_applied) / wall : 0.0);
    rec.metric("initial_cost", res.initial_cost);
    rec.metric("final_cost", res.final_cost);
    rec.metric("final_fresh_cost", res.final_fresh_cost);
    rec.metric("max_cost_ratio_vs_fresh", res.max_cost_ratio());
    rec.metric("fold_p50_ns", res.fold_p50_ns());
    rec.metric("fold_p99_ns", res.fold_p99_ns());
    rec.metric("trigger_p50_ns", res.trigger_p50_ns());
    rec.metric("trigger_p99_ns", res.trigger_p99_ns());
    report.add(rec);
    std::cerr << "[streaming-ingest] " << rec.scenario << ": "
              << res.reopts.size() << " re-opts over " << res.deltas_applied
              << " deltas (" << res.deltas_per_reopt()
              << " per re-opt), max ratio vs fresh " << res.max_cost_ratio()
              << " in " << wall << "s wall\n";
  }

  // ---- sharded ingest + partial re-optimisation -----------------------------
  // Same scenarios with drift attribution split across 4 VM shards and each
  // triggered re-opt confined to the drifted shards' token ranges. Hard
  // gates: the <= 1.05 band vs fresh still holds under partial re-opts, both
  // queue families respect their bounds, and a seq re-run of the identical
  // config lands on bit-identical results (the fold is single-owner; shard
  // workers only write disjoint accumulators).
  for (auto& spec : specs) {
    const topo::Topology& topology = *spec.topology;
    driver::StreamingConfig cfg;
    cfg.server_capacity.vm_slots = 16;
    cfg.server_capacity.ram_mb = 16 * 256.0;
    cfg.server_capacity.cpu_cores = 16.0;
    cfg.generator.num_vms =
        topology.num_hosts() * cfg.server_capacity.vm_slots / 2;
    cfg.generator.mean_service_size = 24;
    cfg.generator.intra_service_degree = 4.0;
    cfg.generator.cross_service_prob = 0.3;
    cfg.generator.seed = 42;
    cfg.placement_seed = 43;
    cfg.events.events_per_tick = cfg.generator.num_vms / 2;
    cfg.events.seed = 97;
    cfg.ticks = g_quick ? 6 : 12;
    cfg.queue_capacity = 4;
    cfg.drift_threshold = 0.05;
    cfg.tokens = 4;
    cfg.iterations_per_reopt = 8;
    cfg.fresh_reference = true;
    cfg.reopt_iterations = 8;
    cfg.ingest_shards = 4;
    cfg.partial_reopt = true;
    cfg.exec = util::ExecPolicy::par(2);

    bench::Stopwatch sw;
    driver::StreamingEngine engine(topology, cfg);
    const driver::StreamingReport res = engine.run();
    const double wall = sw.elapsed_s();

    if (res.undefined_cost_ratios() > 0 ||
        res.max_cost_ratio() - 1.0 > kDriftBand) {
      std::cerr << "[streaming-ingest] BAND FAILURE: " << spec.name
                << "/sharded max cost ratio " << res.max_cost_ratio()
                << " (undefined " << res.undefined_cost_ratios()
                << ") vs band " << 1.0 + kDriftBand << "\n";
      ok = false;
    }
    if (res.max_queue_depth > cfg.queue_capacity ||
        res.max_shard_queue_depth > cfg.queue_capacity) {
      std::cerr << "[streaming-ingest] BACKPRESSURE FAILURE: " << spec.name
                << "/sharded depths " << res.max_queue_depth << "/"
                << res.max_shard_queue_depth << " > capacity "
                << cfg.queue_capacity << "\n";
      ok = false;
    }
    // Determinism cross-check: the parallel shard fold must be bit-identical
    // to the sequential one (disjoint accumulators, fixed demux order).
    {
      driver::StreamingConfig seq_cfg = cfg;
      seq_cfg.exec = util::ExecPolicy::seq();
      const driver::StreamingReport seq_res =
          driver::StreamingEngine(topology, seq_cfg).run();
      if (seq_res.final_cost != res.final_cost ||
          seq_res.reopts.size() != res.reopts.size() ||
          seq_res.partial_reopts != res.partial_reopts) {
        std::cerr << "[streaming-ingest] DETERMINISM FAILURE: " << spec.name
                  << "/sharded seq vs par(2): final " << seq_res.final_cost
                  << " vs " << res.final_cost << ", reopts "
                  << seq_res.reopts.size() << " vs " << res.reopts.size()
                  << ", partial " << seq_res.partial_reopts << " vs "
                  << res.partial_reopts << "\n";
        ok = false;
      }
    }

    std::size_t migrations = 0;
    for (const driver::ReoptEvent& ev : res.reopts) migrations += ev.migrations;

    bench::BenchRecord rec;
    rec.suite = "streaming-ingest";
    rec.scenario = spec.name + "/sharded-ingest";
    rec.wall_time_s = wall;
    rec.cost_reduction_pct =
        res.initial_cost > 0.0
            ? 100.0 * (1.0 - res.final_cost / res.initial_cost)
            : 0.0;
    rec.migrations = migrations;
    rec.metric("num_hosts", static_cast<double>(topology.num_hosts()));
    rec.metric("num_vms", static_cast<double>(cfg.generator.num_vms));
    rec.metric("ticks", static_cast<double>(res.ticks));
    rec.metric("ingest_shards", static_cast<double>(res.ingest_shards));
    rec.metric("deltas_applied", static_cast<double>(res.deltas_applied));
    rec.metric("deltas_folded", static_cast<double>(res.deltas_folded));
    rec.metric("cache_rebuilds", static_cast<double>(res.cache_rebuilds));
    rec.metric("queue_capacity", static_cast<double>(cfg.queue_capacity));
    rec.metric("max_queue_depth", static_cast<double>(res.max_queue_depth));
    rec.metric("max_shard_queue_depth",
               static_cast<double>(res.max_shard_queue_depth));
    rec.metric("reopts", static_cast<double>(res.reopts.size()));
    rec.metric("partial_reopts", static_cast<double>(res.partial_reopts));
    rec.metric("deltas_per_reopt", res.deltas_per_reopt());
    rec.metric("updates_per_sec",
               wall > 0.0 ? static_cast<double>(res.deltas_applied) / wall : 0.0);
    rec.metric("initial_cost", res.initial_cost);
    rec.metric("final_cost", res.final_cost);
    rec.metric("final_fresh_cost", res.final_fresh_cost);
    rec.metric("max_cost_ratio_vs_fresh", res.max_cost_ratio());
    rec.metric("fold_p50_ns", res.fold_p50_ns());
    rec.metric("fold_p99_ns", res.fold_p99_ns());
    rec.metric("trigger_p50_ns", res.trigger_p50_ns());
    rec.metric("trigger_p99_ns", res.trigger_p99_ns());
    report.add(rec);
    std::cerr << "[streaming-ingest] " << rec.scenario << ": "
              << res.reopts.size() << " re-opts (" << res.partial_reopts
              << " partial) over " << res.deltas_applied
              << " deltas, max ratio vs fresh " << res.max_cost_ratio()
              << ", fold p99 " << res.fold_p99_ns() << " ns in " << wall
              << "s wall\n";
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Huge-scale suite (--scale huge): the mega-scale memory/latency envelope.
// ---------------------------------------------------------------------------

/// Peak resident set of this process, in bytes. Prefers VmHWM from
/// /proc/self/status (resettable via /proc/self/clear_refs, so per-scenario
/// peaks don't shadow each other); falls back to the monotone getrusage
/// ru_maxrss where procfs is unavailable.
std::uint64_t peak_rss_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::uint64_t kb = 0;
      for (const char c : line) {
        if (c >= '0' && c <= '9') kb = kb * 10 + static_cast<std::uint64_t>(c - '0');
      }
      if (kb > 0) return kb * 1024;
    }
  }
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0 && ru.ru_maxrss > 0) {
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KB on Linux
  }
#endif
  return 0;
}

/// Reset the kernel's peak-RSS watermark (Linux: "5" to clear_refs). Best
/// effort — when it fails, peak_rss_bytes() degrades to a monotone peak and
/// bytes_per_vm becomes an upper bound (still valid for the one-sided gate).
void reset_peak_rss() {
  std::ofstream clear_refs("/proc/self/clear_refs");
  if (clear_refs) clear_refs << "5\n";
}

// Mega-scale suite: the CSR traffic store, arena-packed oracle, and O(1)
// comm-level topology carried to datacenter sizes the per-VM-vector layout
// could not reach. Fat-tree k=48 (27648 hosts / 221184 VMs), k=64 (65536
// hosts / 524288 VMs), and the canonical 1M-VM world (128000 hosts /
// 1024000 VMs) each run end-to-end: generate the fleet, bind the cached
// oracle, run fixed Round-Robin token passes, and stream the scenario
// snapshot through the O(max_degree) writer. Two hard one-sided gates:
//   bytes_per_vm        peak RSS / num_vms        <= kMaxBytesPerVm
//   ns_per_migration    sim wall / migrations     <= kMaxNsPerMigration
// --quick trims the suite to fat-tree-k48 (the CI smoke tier).
bool run_huge_scale(bench::JsonReport& report) {
  struct Spec {
    std::string name;
    std::function<std::unique_ptr<topo::Topology>()> make;
  };
  std::vector<Spec> specs;
  specs.push_back({"fat-tree-k48", [] {
                     return std::make_unique<topo::FatTree>(
                         topo::FatTreeConfig::huge_scale_k48());
                   }});
  if (!g_quick) {
    specs.push_back({"fat-tree-k64", [] {
                       return std::make_unique<topo::FatTree>(
                           topo::FatTreeConfig::huge_scale_k64());
                     }});
    specs.push_back({"canonical-1m-vm", [] {
                       return std::make_unique<topo::CanonicalTree>(
                           topo::CanonicalTreeConfig::huge_scale());
                     }});
  }

  // Measured on the reference host: ~250-290 bytes/VM and ~5.5-6.5 us per
  // migration across all three scenarios. The gates leave ~4x (memory) and
  // ~15x (latency, noisier across hosts) headroom — a per-VM-vector layout
  // or an O(n) begin_pass regression blows through either immediately.
  constexpr double kMaxBytesPerVm = 1024.0;
  constexpr double kMaxNsPerMigration = 100000.0;  // 100 us end-to-end
  bool ok = true;

  for (const Spec& spec : specs) {
    reset_peak_rss();
    bench::Stopwatch sw;
    const std::unique_ptr<topo::Topology> topology = spec.make();
    PaperFleet fleet = make_paper_fleet(*topology);
    const std::size_t num_vms = fleet.num_vms;
    traffic::TrafficMatrix& tm = fleet.tm;
    core::Allocation& alloc = fleet.alloc;

    core::CachedCostModel model(*topology, core::LinkWeights::exponential(3));
    model.bind(alloc, tm);
    core::MigrationEngine engine(model);
    core::RoundRobinPolicy rr;
    driver::SimConfig cfg;
    cfg.iterations = 2;  // fixed even under --quick: rows stay comparable
    cfg.stop_when_stable = false;
    driver::ScoreSimulation sim(engine, rr, alloc, tm);

    bench::Stopwatch sim_sw;
    const driver::SimResult res = sim.run(cfg);
    const double sim_wall = sim_sw.elapsed_s();

    // Streaming snapshot writer: the whole world through O(max_degree)
    // buffering (a 1M-VM scenario must not materialise a pairs() vector).
    bench::Stopwatch save_sw;
    std::ofstream null_out("/dev/null");
    core::save_scenario(null_out, alloc, tm);
    const double save_wall = save_sw.elapsed_s();

    const std::uint64_t peak_rss = peak_rss_bytes();
    const double bytes_per_vm =
        num_vms > 0 ? static_cast<double>(peak_rss) / static_cast<double>(num_vms)
                    : 0.0;
    const double ns_per_migration =
        res.total_migrations > 0
            ? 1e9 * sim_wall / static_cast<double>(res.total_migrations)
            : 0.0;

    if (bytes_per_vm <= 0.0 || bytes_per_vm > kMaxBytesPerVm) {
      std::cerr << "[huge-scale] MEMORY FAILURE: " << spec.name << " "
                << bytes_per_vm << " bytes/VM outside (0, " << kMaxBytesPerVm
                << "] (peak RSS " << peak_rss << " B over " << num_vms
                << " VMs)\n";
      ok = false;
    }
    if (ns_per_migration <= 0.0 || ns_per_migration > kMaxNsPerMigration) {
      std::cerr << "[huge-scale] LATENCY FAILURE: " << spec.name << " "
                << ns_per_migration << " ns/migration outside (0, "
                << kMaxNsPerMigration << "] (" << res.total_migrations
                << " migrations in " << sim_wall << "s)\n";
      ok = false;
    }

    bench::BenchRecord rec;
    rec.suite = "huge-scale";
    rec.scenario = spec.name;
    rec.wall_time_s = sw.elapsed_s();
    rec.cost_reduction_pct = 100.0 * res.reduction();
    rec.migrations = res.total_migrations;
    rec.metric("num_hosts", static_cast<double>(topology->num_hosts()));
    rec.metric("num_vms", static_cast<double>(num_vms));
    rec.metric("iterations", static_cast<double>(res.iterations.size()));
    rec.metric("sim_wall_s", sim_wall);
    rec.metric("peak_rss_bytes", static_cast<double>(peak_rss));
    rec.metric("bytes_per_vm", bytes_per_vm);
    rec.metric("ns_per_migration", ns_per_migration);
    rec.metric("scenario_save_s", save_wall);
    rec.metric("traffic_pairs", static_cast<double>(tm.num_pairs()));
    rec.metric("csr_entries", static_cast<double>(tm.csr_entries()));
    rec.metric("overflow_entries", static_cast<double>(tm.overflow_entries()));
    rec.metric("compactions", static_cast<double>(tm.compactions()));
    rec.metric("final_cost", res.final_cost);
    report.add(rec);
    std::cerr << "[huge-scale] " << spec.name << ": " << topology->num_hosts()
              << " hosts, " << num_vms << " VMs, " << bytes_per_vm
              << " bytes/VM peak, " << ns_per_migration << " ns/migration ("
              << res.total_migrations << " migrations, reduction "
              << rec.cost_reduction_pct << "%), snapshot streamed in "
              << save_wall << "s\n";
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_results.json";
  std::string scale = "default";
  std::string suite = "all";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      g_quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      const int n = std::atoi(argv[++i]);
      if (n < 1) {
        std::cerr << "bench_runner: --threads must be >= 1\n";
        return 2;
      }
      g_threads = static_cast<std::size_t>(n);
    } else if (arg == "--scale" && i + 1 < argc) {
      scale = argv[++i];
      if (scale != "default" && scale != "paper" && scale != "huge") {
        std::cerr << "bench_runner: --scale must be 'default', 'paper' or "
                     "'huge'\n";
        return 2;
      }
    } else if (arg == "--suite" && i + 1 < argc) {
      suite = argv[++i];
      if (suite != "all" && suite != "fig2" && suite != "fig3" &&
          suite != "micro" && suite != "paper-scale" &&
          suite != "tokens-threads" && suite != "dist-vs-centralized" &&
          suite != "steady-state" && suite != "streaming-ingest" &&
          suite != "huge-scale") {
        std::cerr << "bench_runner: --suite must be one of all, fig2, fig3, "
                     "micro, paper-scale, tokens-threads, "
                     "dist-vs-centralized, steady-state, streaming-ingest, "
                     "huge-scale\n";
        return 2;
      }
    } else if (arg == "--mode" && i + 1 < argc) {
      g_mode = argv[++i];
      if (g_mode != "both" && g_mode != "centralized" && g_mode != "distributed") {
        std::cerr << "bench_runner: --mode must be 'both', 'centralized' or "
                     "'distributed'\n";
        return 2;
      }
    } else {
      std::cerr << "usage: bench_runner [--out FILE] [--quick] "
                   "[--scale default|paper|huge] [--threads N] [--suite NAME] "
                   "[--mode both|centralized|distributed]\n";
      return 2;
    }
  }
  // "huge" is a strict superset of "paper": a single `--scale huge` run
  // regenerates every row of BENCH_results.json (default + paper + huge).
  g_paper_suite = scale == "paper" || scale == "huge";
  g_huge_suite = scale == "huge";
  const auto want = [&suite](const char* name) {
    return suite == "all" || suite == name;
  };

  score::bench::JsonReport report;
  report.set_scale_label(scale);
  score::bench::Stopwatch total;
  bool ok = true;
  if (want("fig2")) run_fig2(report);
  if (want("fig3")) run_fig3(report);
  if (want("micro")) run_micro(report);
  if (g_paper_suite) {
    if (want("paper-scale")) run_paper_scale(report);
    if (want("tokens-threads")) ok = run_tokens_threads(report) && ok;
    if (want("dist-vs-centralized")) ok = run_dist_vs_centralized(report) && ok;
    if (want("steady-state")) ok = run_steady_state(report) && ok;
    if (want("streaming-ingest")) ok = run_streaming_ingest(report) && ok;
  }
  if (g_huge_suite) {
    if (want("huge-scale")) ok = run_huge_scale(report) && ok;
  }
  if (report.size() == 0) {
    std::cerr << "bench_runner: --suite " << suite
              << " selected no benches at --scale " << scale << "\n";
    return 2;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_runner: cannot open " << out_path << " for writing\n";
    return 1;
  }
  report.write(out);
  std::cerr << "wrote " << report.size() << " results to " << out_path
            << " in " << total.elapsed_s() << "s\n";
  if (!ok) {
    std::cerr << "bench_runner: FAILED (hard check violated — see messages "
                 "above)\n";
    return 1;
  }
  return 0;
}
