// score_agent — the per-host-range dom0 agent daemon of the multi-process
// control plane.
//
// Builds its world replica from the same flags as the scheduler, connects to
// the scheduler's listen address (retrying while the scheduler is still
// starting), then serves framed tasks over a ReliableLink until shutdown.
// One process typically owns a contiguous range of hosts (assigned by the
// scheduler at kInit), so "1 scheduler + N agents" partitions the data
// center among N daemons.
//
// If the connection drops mid-run the daemon keeps its replica state and
// reconnects (up to --reconnect-retries attempts with exponential backoff),
// resuming from its mutating-action-log cursor — the scheduler resyncs
// exactly the missed suffix and re-sends the in-flight task.
//
// Example (4 agents over a unix socket):
//   score_scheduler --listen unix:/tmp/score.sock --agents 4 --vms 1024 &
//   for i in 1 2 3 4; do score_agent --connect unix:/tmp/score.sock --vms 1024 & done
//
// Every world flag must match the scheduler's invocation exactly — the
// fingerprint handshake turns any mismatch into an immediate error instead
// of a silently divergent run.
#include <chrono>
#include <iostream>
#include <thread>

#include "hypervisor/agent_daemon.hpp"
#include "util/flags.hpp"
#include "util/reliable_link.hpp"
#include "util/socket.hpp"
#include "util/transport.hpp"
#include "world_builder.hpp"

int main(int argc, char** argv) {
  using namespace score;

  util::Flags flags;
  tools::register_world_flags(flags);
  flags.add_string("connect", "",
                   "scheduler address to connect to (unix:/path or "
                   "tcp:host:port); required");
  flags.add_double("connect-timeout", 10.0,
                   "seconds to keep retrying the connect while the scheduler "
                   "starts up");
  flags.add_int("reconnect-retries", 5,
                "reconnect attempts after a dropped connection before giving "
                "up (0 = die on first drop)");
  flags.add_double("reconnect-backoff", 0.2,
                   "initial delay before a reconnect attempt, doubled each "
                   "consecutive failure (seconds)");
  flags.add_int("crash-after-tasks", 0,
                "chaos hook: exit abruptly (code 17) after executing this "
                "many tasks, before sending the result; 0 disables");
  flags.add_double("retransmit-timeout", 0.05,
                   "reliable-link initial retransmission timeout (seconds); "
                   "chaos tests shrink it to keep lossy runs fast");

  try {
    if (!flags.parse(argc, argv)) {
      std::cout << flags.help("score_agent");
      return 0;
    }
    if (flags.get_string("connect").empty()) {
      throw std::invalid_argument("--connect is required");
    }
    const long long retries = flags.get_int("reconnect-retries");
    if (retries < 0) {
      throw std::invalid_argument("--reconnect-retries must be >= 0");
    }

    tools::World w = tools::build_world(flags);
    hypervisor::AgentDaemon daemon(*w.model, *w.alloc, *w.tm, w.runtime);
    daemon.set_crash_after_tasks(
        static_cast<std::size_t>(flags.get_int("crash-after-tasks")));

    std::size_t tasks = 0;
    long long drops = 0;
    double backoff = flags.get_double("reconnect-backoff");
    while (!daemon.done()) {
      util::Socket socket = util::Socket::connect(
          flags.get_string("connect"), flags.get_double("connect-timeout"));
      util::SocketTransport transport(socket);
      util::LinkConfig link_cfg;
      link_cfg.retransmit_timeout_s = flags.get_double("retransmit-timeout");
      util::ReliableLink link(transport, link_cfg);
      try {
        tasks += daemon.serve(link);
      } catch (const util::LinkDown& e) {
        if (++drops > retries) {
          std::cerr << "score_agent: " << e.what() << " after " << retries
                    << " reconnects, giving up\n";
          return 1;
        }
        std::cerr << "score_agent: connection lost (" << e.what()
                  << "), reconnect " << drops << "/" << retries << "\n";
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        backoff *= 2.0;
      }
    }
    std::cout << "score_agent: run complete, " << tasks << " tasks served\n";
    return 0;
  } catch (const std::invalid_argument& e) {
    std::cerr << "score_agent: " << e.what() << " (--help for usage)\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "score_agent: " << e.what() << "\n";
    return 1;
  }
}
