// score_agent — the per-host-range dom0 agent daemon of the multi-process
// control plane.
//
// Builds its world replica from the same flags as the scheduler, connects to
// the scheduler's listen address (retrying while the scheduler is still
// starting), then serves framed tasks until shutdown. One process typically
// owns a contiguous range of hosts (assigned by the scheduler at kInit), so
// "1 scheduler + N agents" partitions the data center among N daemons.
//
// Example (4 agents over a unix socket):
//   score_scheduler --listen unix:/tmp/score.sock --agents 4 --vms 1024 &
//   for i in 1 2 3 4; do score_agent --connect unix:/tmp/score.sock --vms 1024 & done
//
// Every world flag must match the scheduler's invocation exactly — the
// fingerprint handshake turns any mismatch into an immediate error instead
// of a silently divergent run.
#include <iostream>

#include "hypervisor/agent_daemon.hpp"
#include "util/flags.hpp"
#include "util/socket.hpp"
#include "world_builder.hpp"

int main(int argc, char** argv) {
  using namespace score;

  util::Flags flags;
  tools::register_world_flags(flags);
  flags.add_string("connect", "",
                   "scheduler address to connect to (unix:/path or "
                   "tcp:host:port); required");
  flags.add_double("connect-timeout", 10.0,
                   "seconds to keep retrying the connect while the scheduler "
                   "starts up");

  try {
    if (!flags.parse(argc, argv)) {
      std::cout << flags.help("score_agent");
      return 0;
    }
    if (flags.get_string("connect").empty()) {
      throw std::invalid_argument("--connect is required");
    }

    tools::World w = tools::build_world(flags);
    hypervisor::AgentDaemon daemon(*w.model, *w.alloc, *w.tm, w.runtime);

    util::Socket socket = util::Socket::connect(
        flags.get_string("connect"), flags.get_double("connect-timeout"));
    const std::size_t tasks = daemon.serve(socket);
    std::cout << "score_agent: run complete, " << tasks << " tasks served\n";
    return 0;
  } catch (const std::invalid_argument& e) {
    std::cerr << "score_agent: " << e.what() << " (--help for usage)\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "score_agent: " << e.what() << "\n";
    return 1;
  }
}
