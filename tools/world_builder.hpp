// Shared world construction for the command-line tools and the control-plane
// integration tests.
//
// The multi-process control plane never ships the world over the wire: the
// scheduler and every score_agent daemon build it independently from the
// same flags, and the kHello fingerprint handshake proves they built the
// same one. That only works if the flag -> world mapping lives in exactly
// one place — this header. score_cli, score_scheduler, score_agent and
// test_control_plane all register the same flags with the same defaults and
// run the same construction order (generator, then placement RNG at
// seed + 1), so equal flag lists give bit-identical worlds in any process.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "baselines/placement.hpp"
#include "core/cost_model.hpp"
#include "core/link_weights.hpp"
#include "hypervisor/distributed_runtime.hpp"
#include "topology/canonical_tree.hpp"
#include "topology/fat_tree.hpp"
#include "topology/leaf_spine.hpp"
#include "traffic/generator.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

namespace score::tools {

/// A fully built world plus the runtime config derived from the same flags.
/// Members are pointers because topology/model/tm/alloc have reference
/// semantics between them; the struct owns the whole chain.
struct World {
  std::unique_ptr<topo::Topology> topology;
  std::unique_ptr<core::CostModel> model;
  std::unique_ptr<traffic::TrafficMatrix> tm;
  std::unique_ptr<core::Allocation> alloc;
  hypervisor::RuntimeConfig runtime;
  std::uint64_t fingerprint = 0;
};

/// Register every world-defining flag (topology, workload, placement, and
/// the protocol-relevant runtime knobs). Defaults match the historical
/// score_cli defaults.
inline void register_world_flags(util::Flags& flags) {
  flags.add_string("topology", "canonical", "canonical | fattree | leafspine");
  flags.add_int("racks", 32, "canonical tree: number of racks");
  flags.add_int("hosts-per-rack", 5, "canonical tree: hosts per rack");
  flags.add_int("racks-per-pod", 4, "canonical tree: racks per aggregation pod");
  flags.add_int("cores", 4, "canonical tree: core switches");
  flags.add_int("k", 8, "fat-tree arity (even)");
  flags.add_int("vms", 320, "fleet size");
  flags.add_int("slots", 4, "VM slots per server");
  flags.add_string("intensity", "sparse", "sparse | medium (x10) | dense (x50)");
  flags.add_int("seed", 42, "workload / placement seed");
  flags.add_string("placement", "random",
                   "initial placement: random | round-robin | packed");
  flags.add_string("policy", "hlf", "token policy: rr | hlf | random | htf");
  flags.add_int("iterations", 8, "max token-passing iterations");
  flags.add_double("cm", 0.0, "migration cost c_m (cost units)");
  flags.add_double("loss", 0.0,
                   "control-message loss rate (distributed mode only)");
  flags.add_double("budget-mb", 0.0,
                   "migration-cost budget: total modeled pre-copy MB "
                   "(0 = unlimited; distributed mode only)");
}

inline std::unique_ptr<topo::Topology> make_topology(const util::Flags& flags) {
  if (flags.get_string("topology") == "fattree") {
    topo::FatTreeConfig cfg;
    cfg.k = static_cast<std::size_t>(flags.get_int("k"));
    return std::make_unique<topo::FatTree>(cfg);
  }
  if (flags.get_string("topology") == "leafspine") {
    topo::LeafSpineConfig cfg;
    cfg.leaves = static_cast<std::size_t>(flags.get_int("racks"));
    cfg.hosts_per_leaf =
        static_cast<std::size_t>(flags.get_int("hosts-per-rack"));
    cfg.spines = static_cast<std::size_t>(flags.get_int("cores"));
    return std::make_unique<topo::LeafSpine>(cfg);
  }
  if (flags.get_string("topology") == "canonical") {
    topo::CanonicalTreeConfig cfg;
    cfg.racks = static_cast<std::size_t>(flags.get_int("racks"));
    cfg.hosts_per_rack =
        static_cast<std::size_t>(flags.get_int("hosts-per-rack"));
    cfg.racks_per_pod =
        static_cast<std::size_t>(flags.get_int("racks-per-pod"));
    cfg.cores = static_cast<std::size_t>(flags.get_int("cores"));
    return std::make_unique<topo::CanonicalTree>(cfg);
  }
  throw std::invalid_argument(
      "--topology must be canonical, fattree or leafspine");
}

inline traffic::Intensity parse_intensity(const std::string& name) {
  if (name == "sparse") return traffic::Intensity::kSparse;
  if (name == "medium") return traffic::Intensity::kMedium;
  if (name == "dense") return traffic::Intensity::kDense;
  throw std::invalid_argument("--intensity must be sparse, medium or dense");
}

inline baselines::PlacementStrategy parse_placement(const std::string& name) {
  if (name == "random") return baselines::PlacementStrategy::kRandom;
  if (name == "round-robin") return baselines::PlacementStrategy::kRoundRobin;
  if (name == "packed") return baselines::PlacementStrategy::kPacked;
  throw std::invalid_argument(
      "--placement must be random, round-robin or packed");
}

/// Build the world and the distributed runtime config from parsed flags.
inline World build_world(const util::Flags& flags) {
  World w;
  w.topology = make_topology(flags);
  w.model = std::make_unique<core::CostModel>(
      *w.topology, core::LinkWeights::exponential(w.topology->max_level()));

  traffic::GeneratorConfig gen;
  gen.num_vms = static_cast<std::size_t>(flags.get_int("vms"));
  gen.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  w.tm = std::make_unique<traffic::TrafficMatrix>(traffic::generate_traffic(
      gen, parse_intensity(flags.get_string("intensity"))));

  core::ServerCapacity cap;
  cap.vm_slots = static_cast<std::size_t>(flags.get_int("slots"));
  cap.ram_mb = static_cast<double>(cap.vm_slots) * 256.0;
  cap.cpu_cores = static_cast<double>(cap.vm_slots);
  util::Rng rng(gen.seed + 1);
  w.alloc = std::make_unique<core::Allocation>(baselines::make_allocation(
      *w.topology, cap, gen.num_vms, core::VmSpec{},
      parse_placement(flags.get_string("placement")), rng));

  w.runtime.policy = flags.get_string("policy") == "rr" ||
                             flags.get_string("policy") == "round-robin"
                         ? "round-robin"
                         : "highest-level-first";
  w.runtime.engine.migration_cost = flags.get_double("cm");
  w.runtime.iterations = static_cast<std::size_t>(flags.get_int("iterations"));
  w.runtime.message_loss_rate = flags.get_double("loss");
  w.runtime.migration_budget_mb = flags.get_double("budget-mb");

  w.fingerprint =
      hypervisor::world_fingerprint(*w.model, *w.alloc, *w.tm, w.runtime);
  return w;
}

}  // namespace score::tools
