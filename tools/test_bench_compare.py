#!/usr/bin/env python3
"""Unit tests for tools/bench_compare.py (schema rejection, perf-gate trips,
--allow-new). Stdlib only; run directly, via `ctest -R python_tools_test`, or
through the CI `python-tools-test` step:

    python3 tools/test_bench_compare.py -v
"""

from __future__ import annotations

import argparse
import copy
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_compare as bc


def make_record(suite="micro", scenario="total_cost", **overrides):
    record = {
        "suite": suite,
        "scenario": scenario,
        "wall_time_s": 1.5,
        "cost_reduction_pct": 40.0,
        "migrations": 12,
    }
    record.update(overrides)
    return record


def make_doc(records):
    return {"schema": "score-bench/v1", "scale": "default", "results": records}


def gate_args(**overrides):
    defaults = dict(ns_tolerance=0.25, ns_floor=100.0, checksum_rtol=1e-6,
                    reduction_atol=1.0, updates_tolerance=0.4,
                    bytes_tolerance=0.25, migration_tolerance=0.5,
                    fold_tolerance=1.0, fail_on_new=True)
    defaults.update(overrides)
    return argparse.Namespace(**defaults)


class ValidateTests(unittest.TestCase):
    def test_valid_document_passes(self):
        doc = make_doc([make_record()])
        self.assertEqual(bc.validate(doc, "f"), [])

    def test_top_level_must_be_object(self):
        self.assertTrue(bc.validate([], "f"))

    def test_wrong_schema_string_rejected(self):
        doc = make_doc([make_record()])
        doc["schema"] = "score-bench/v2"
        errors = bc.validate(doc, "f")
        self.assertTrue(any("schema" in e for e in errors))

    def test_unknown_scale_rejected(self):
        doc = make_doc([make_record()])
        doc["scale"] = "galactic"
        errors = bc.validate(doc, "f")
        self.assertTrue(any("scale" in e for e in errors))

    def test_empty_results_rejected(self):
        errors = bc.validate(make_doc([]), "f")
        self.assertTrue(any("non-empty" in e for e in errors))

    def test_missing_required_field_rejected(self):
        record = make_record()
        del record["migrations"]
        errors = bc.validate(make_doc([record]), "f")
        self.assertTrue(any("migrations" in e for e in errors))

    def test_bool_masquerading_as_number_rejected(self):
        errors = bc.validate(make_doc([make_record(wall_time_s=True)]), "f")
        self.assertTrue(any("wall_time_s" in e for e in errors))

    def test_non_numeric_metric_rejected(self):
        errors = bc.validate(make_doc([make_record(ns_per_call="fast")]), "f")
        self.assertTrue(any("ns_per_call" in e for e in errors))

    def test_duplicate_suite_scenario_rejected(self):
        errors = bc.validate(make_doc([make_record(), make_record()]), "f")
        self.assertTrue(any("duplicate" in e for e in errors))


class CompareTests(unittest.TestCase):
    def run_compare(self, baseline, candidate, **args):
        return bc.compare(make_doc(baseline), make_doc(candidate), gate_args(**args))

    def test_identical_documents_pass(self):
        records = [make_record(ns_per_call=500.0)]
        self.assertEqual(self.run_compare(records, copy.deepcopy(records)), 0)

    def test_ns_per_call_regression_over_25pct_trips_gate(self):
        base = [make_record(ns_per_call=1000.0)]
        cand = [make_record(ns_per_call=1300.0)]  # +30% > +25%
        self.assertEqual(self.run_compare(base, cand), 1)

    def test_ns_per_call_regression_within_tolerance_passes(self):
        base = [make_record(ns_per_call=1000.0)]
        cand = [make_record(ns_per_call=1200.0)]  # +20%
        self.assertEqual(self.run_compare(base, cand), 0)

    def test_timer_noise_floor_shields_fast_operations(self):
        base = [make_record(ns_per_call=3.0)]
        cand = [make_record(ns_per_call=50.0)]  # huge ratio, still < 100 ns
        self.assertEqual(self.run_compare(base, cand), 0)

    def test_checksum_divergence_trips_gate(self):
        base = [make_record(checksum_per_call=10.0)]
        cand = [make_record(checksum_per_call=10.1)]
        self.assertEqual(self.run_compare(base, cand), 1)

    def test_raw_checksum_only_compared_at_equal_call_counts(self):
        base = [make_record(checksum=100.0, calls=10)]
        cand = [make_record(checksum=999.0, calls=20)]  # different rep count
        self.assertEqual(self.run_compare(base, cand), 0)

    def test_cost_reduction_drift_trips_gate(self):
        base = [make_record(cost_reduction_pct=40.0)]
        cand = [make_record(cost_reduction_pct=38.5)]  # |Δ| 1.5 pp > 1.0
        self.assertEqual(self.run_compare(base, cand), 1)

    def test_updates_per_sec_drop_over_tolerance_trips_gate(self):
        base = [make_record(updates_per_sec=2e6)]
        cand = [make_record(updates_per_sec=1e6)]  # -50% < -40%
        self.assertEqual(self.run_compare(base, cand), 1)

    def test_updates_per_sec_drop_within_tolerance_passes(self):
        base = [make_record(updates_per_sec=2e6)]
        cand = [make_record(updates_per_sec=1.5e6)]  # -25%
        self.assertEqual(self.run_compare(base, cand), 0)

    def test_updates_per_sec_speedup_never_fails(self):
        base = [make_record(updates_per_sec=1e6)]
        cand = [make_record(updates_per_sec=9e6)]  # 9x faster
        self.assertEqual(self.run_compare(base, cand), 0)

    def test_updates_tolerance_is_adjustable(self):
        base = [make_record(updates_per_sec=2e6)]
        cand = [make_record(updates_per_sec=1.5e6)]  # -25%
        self.assertEqual(self.run_compare(base, cand, updates_tolerance=0.1), 1)

    def test_bytes_per_vm_growth_over_tolerance_trips_gate(self):
        base = [make_record(bytes_per_vm=300.0)]
        cand = [make_record(bytes_per_vm=400.0)]  # +33% > +25%
        self.assertEqual(self.run_compare(base, cand), 1)

    def test_bytes_per_vm_growth_within_tolerance_passes(self):
        base = [make_record(bytes_per_vm=300.0)]
        cand = [make_record(bytes_per_vm=360.0)]  # +20%
        self.assertEqual(self.run_compare(base, cand), 0)

    def test_bytes_per_vm_shrink_never_fails(self):
        base = [make_record(bytes_per_vm=1000.0)]
        cand = [make_record(bytes_per_vm=250.0)]  # 4x smaller
        self.assertEqual(self.run_compare(base, cand), 0)

    def test_bytes_tolerance_is_adjustable(self):
        base = [make_record(bytes_per_vm=300.0)]
        cand = [make_record(bytes_per_vm=330.0)]  # +10%
        self.assertEqual(self.run_compare(base, cand, bytes_tolerance=0.05), 1)

    def test_ns_per_migration_growth_over_tolerance_trips_gate(self):
        base = [make_record(ns_per_migration=6000.0)]
        cand = [make_record(ns_per_migration=10000.0)]  # +66% > +50%
        self.assertEqual(self.run_compare(base, cand), 1)

    def test_ns_per_migration_growth_within_tolerance_passes(self):
        base = [make_record(ns_per_migration=6000.0)]
        cand = [make_record(ns_per_migration=8000.0)]  # +33%
        self.assertEqual(self.run_compare(base, cand), 0)

    def test_ns_per_migration_speedup_never_fails(self):
        base = [make_record(ns_per_migration=10000.0)]
        cand = [make_record(ns_per_migration=2000.0)]  # 5x faster
        self.assertEqual(self.run_compare(base, cand), 0)

    def test_fold_p99_growth_over_tolerance_trips_gate(self):
        base = [make_record(fold_p99_ns=50000.0)]
        cand = [make_record(fold_p99_ns=110000.0)]  # +120% > +100%
        self.assertEqual(self.run_compare(base, cand), 1)

    def test_fold_p99_growth_within_tolerance_passes(self):
        base = [make_record(fold_p99_ns=50000.0)]
        cand = [make_record(fold_p99_ns=90000.0)]  # +80%
        self.assertEqual(self.run_compare(base, cand), 0)

    def test_fold_p99_shrink_never_fails(self):
        base = [make_record(fold_p99_ns=100000.0)]
        cand = [make_record(fold_p99_ns=10000.0)]  # 10x faster tail
        self.assertEqual(self.run_compare(base, cand), 0)

    def test_fold_tolerance_is_adjustable(self):
        base = [make_record(fold_p99_ns=50000.0)]
        cand = [make_record(fold_p99_ns=60000.0)]  # +20%
        self.assertEqual(self.run_compare(base, cand, fold_tolerance=0.1), 1)

    def test_sharded_ingest_row_validates_and_compares(self):
        row = make_record(suite="streaming-ingest",
                          scenario="canonical-2560/sharded-ingest",
                          ingest_shards=4.0, partial_reopts=3.0,
                          max_shard_queue_depth=1.0, fold_p99_ns=80000.0,
                          trigger_p99_ns=700.0, updates_per_sec=2e6,
                          max_cost_ratio_vs_fresh=1.01)
        self.assertEqual(bc.validate(make_doc([row]), "f"), [])
        self.assertEqual(self.run_compare([row], [copy.deepcopy(row)]), 0)

    def test_huge_scale_accepted_by_validate(self):
        doc = make_doc([make_record()])
        doc["scale"] = "huge"
        self.assertEqual(bc.validate(doc, "f"), [])

    def test_new_scenario_fails_by_default(self):
        base = [make_record()]
        cand = [make_record(), make_record(scenario="brand-new")]
        self.assertEqual(self.run_compare(base, cand), 1)

    def test_allow_new_permits_new_scenarios(self):
        base = [make_record()]
        cand = [make_record(), make_record(scenario="brand-new")]
        self.assertEqual(self.run_compare(base, cand, fail_on_new=False), 0)

    def test_baseline_only_scenario_is_skipped_not_failed(self):
        base = [make_record(), make_record(scenario="paper-only")]
        cand = [make_record()]
        self.assertEqual(self.run_compare(base, cand), 0)

    def test_disjoint_documents_fail(self):
        base = [make_record(scenario="a")]
        cand = [make_record(scenario="b")]
        self.assertEqual(self.run_compare(base, cand, fail_on_new=False), 1)


class MainEndToEndTests(unittest.TestCase):
    """Drive main() exactly as CI does, through argv and real files."""

    def write(self, doc):
        f = tempfile.NamedTemporaryFile("w", suffix=".json", delete=False,
                                        dir=self.tmp.name)
        json.dump(doc, f)
        f.close()
        return f.name

    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)
        self.argv = sys.argv

    def tearDown(self):
        sys.argv = self.argv

    def run_main(self, *args):
        sys.argv = ["bench_compare.py", *args]
        return bc.main()

    def test_validate_accepts_good_file(self):
        path = self.write(make_doc([make_record()]))
        self.assertEqual(self.run_main("--validate", path), 0)

    def test_validate_rejects_schema_drift(self):
        doc = make_doc([make_record()])
        doc["schema"] = "not-score-bench"
        self.assertEqual(self.run_main("--validate", self.write(doc)), 1)

    def test_gate_trip_through_files(self):
        base = self.write(make_doc([make_record(ns_per_call=1000.0)]))
        cand = self.write(make_doc([make_record(ns_per_call=2000.0)]))
        self.assertEqual(self.run_main(base, cand), 1)

    def test_allow_new_flag_through_files(self):
        base = self.write(make_doc([make_record()]))
        cand = self.write(make_doc([make_record(),
                                    make_record(scenario="new-suite")]))
        self.assertEqual(self.run_main(base, cand), 1)
        self.assertEqual(self.run_main("--allow-new", base, cand), 0)


if __name__ == "__main__":
    unittest.main()
