#!/usr/bin/env python3
"""Perf-regression gate over score-bench/v1 trajectory files.

Two modes:

  bench_compare.py --validate FILE
      Schema check only: the file must be a score-bench/v1 document with
      well-typed records. Schema drift fails loudly (exit 1).

  bench_compare.py BASELINE CANDIDATE [options]
      Diff a fresh run (CANDIDATE, e.g. BENCH_ci.json) against the committed
      trajectory (BASELINE, BENCH_results.json). Records are joined on
      (suite, scenario); the gate fails (exit 1) when, for any joined pair:

        * ns_per_call regressed by more than --ns-tolerance (default 0.25,
          i.e. +25%); scenarios faster than --ns-floor (default 100 ns, e.g.
          the O(1) cached total_cost read) only fail above the floor itself,
          since single-digit-ns timings are dominated by timer noise,
        * checksum_per_call (rep-count invariant: bench_runner uses
          cycle-aligned rep counts) diverges by more than --checksum-rtol
          relative (default 1e-6); the raw checksum is additionally compared
          when both runs made the same number of calls,
        * cost_reduction_pct differs by more than --reduction-atol
          percentage points (default 1.0),
        * updates_per_sec (the streaming-ingest fold-throughput metric)
          dropped by more than --updates-tolerance fractional (default 0.4,
          i.e. -40%; throughput only gates downward — speedups pass),
        * bytes_per_vm (the huge-scale peak-RSS footprint) grew by more
          than --bytes-tolerance fractional (default 0.25, i.e. +25%;
          one-sided — shrinking always passes),
        * ns_per_migration (the huge-scale end-to-end migration latency)
          grew by more than --migration-tolerance fractional (default 0.5,
          i.e. +50%; one-sided — wall-clock timing is noisier across hosts
          than the memory footprint, hence the wider band),
        * fold_p99_ns (the streaming-ingest per-batch fold tail latency)
          grew by more than --fold-tolerance fractional (default 1.0, i.e.
          +100%; one-sided — a p99 over a handful of batches is the
          noisiest gated metric, so only a clear tail blow-up fails).

      Scenarios present only in the baseline (e.g. the paper-scale suite
      when CI runs --scale default) are reported as skipped, not failed.
      Scenarios present only in the candidate — benches with no committed
      trajectory row — fail the gate by default: a new bench scenario must
      land together with its BENCH_results.json row, so the trajectory file
      stays the single source of truth. Pass --allow-new to permit them
      (e.g. when iterating locally on a brand-new suite before the
      regeneration run).

Stdlib only; used by .github/workflows/ci.yml after the bench-smoke step and
runnable locally:  python3 tools/bench_compare.py BENCH_results.json build/BENCH_ci.json
"""

from __future__ import annotations

import argparse
import json
import sys

SCHEMA = "score-bench/v1"
SCALES = {"default", "paper", "huge"}
REQUIRED_FIELDS = {
    "suite": str,
    "scenario": str,
    "wall_time_s": (int, float),
    "cost_reduction_pct": (int, float),
    "migrations": int,
}


def fail(msg: str) -> None:
    print(f"bench_compare: FAIL: {msg}")


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")


def validate(doc: dict, path: str) -> list[str]:
    """Return a list of schema violations (empty = valid)."""
    errors = []
    if not isinstance(doc, dict):
        return [f"{path}: top level is not a JSON object"]
    if doc.get("schema") != SCHEMA:
        errors.append(f"{path}: schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    if doc.get("scale") not in SCALES:
        errors.append(f"{path}: scale is {doc.get('scale')!r}, expected one of {sorted(SCALES)}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        return errors + [f"{path}: 'results' must be a non-empty array"]
    seen = set()
    for i, rec in enumerate(results):
        if not isinstance(rec, dict):
            errors.append(f"{path}: results[{i}] is not an object")
            continue
        for field, types in REQUIRED_FIELDS.items():
            if field not in rec:
                errors.append(f"{path}: results[{i}] missing required field {field!r}")
            elif not isinstance(rec[field], types) or isinstance(rec[field], bool):
                errors.append(f"{path}: results[{i}].{field} has type {type(rec[field]).__name__}")
        for key, value in rec.items():
            if key in ("suite", "scenario"):
                continue
            if value is not None and (isinstance(value, bool) or not isinstance(value, (int, float))):
                errors.append(f"{path}: results[{i}].{key} is not numeric")
        key = (rec.get("suite"), rec.get("scenario"))
        if key in seen:
            errors.append(f"{path}: duplicate (suite, scenario) {key}")
        seen.add(key)
    return errors


def index(doc: dict) -> dict[tuple[str, str], dict]:
    return {(r["suite"], r["scenario"]): r for r in doc["results"]}


def compare(baseline: dict, candidate: dict, args: argparse.Namespace) -> int:
    base, cand = index(baseline), index(candidate)
    failures = 0
    compared = 0
    skipped = 0
    new = 0
    for key in sorted(base.keys() | cand.keys()):
        name = "/".join(key)
        b, c = base.get(key), cand.get(key)
        if c is None:
            skipped += 1
            print(f"bench_compare: skip {name}: not in candidate "
                  "(e.g. paper-scale suite not run)")
            continue
        if b is None:
            # Newly added scenario: gated by default — its trajectory row must
            # be committed alongside the bench (escape hatch: --allow-new).
            new += 1
            if args.fail_on_new:
                fail(f"{name}: scenario absent from baseline "
                     "(new benches must land with their BENCH_results.json "
                     "row; pass --allow-new to bypass)")
                failures += 1
            else:
                print(f"bench_compare: new {name}: no baseline yet, not gated "
                      "(--allow-new)")
            continue
        compared += 1

        if "ns_per_call" in b and "ns_per_call" in c and b["ns_per_call"] > 0:
            ratio = c["ns_per_call"] / b["ns_per_call"]
            allowed = max(b["ns_per_call"] * (1.0 + args.ns_tolerance), args.ns_floor)
            if c["ns_per_call"] > allowed:
                fail(f"{name}: ns_per_call regressed {b['ns_per_call']:.4g} -> "
                     f"{c['ns_per_call']:.4g} ({ratio:.2f}x, allowed up to "
                     f"{allowed:.4g} ns)")
                failures += 1
            else:
                print(f"bench_compare: ok {name}: ns_per_call "
                      f"{b['ns_per_call']:.4g} -> {c['ns_per_call']:.4g} ({ratio:.2f}x)")

        for field, need_equal_calls in (("checksum_per_call", False),
                                        ("checksum", True)):
            if field not in b or field not in c or b[field] == 0:
                continue
            if need_equal_calls and b.get("calls") != c.get("calls"):
                continue
            rel = abs(c[field] - b[field]) / abs(b[field])
            if rel > args.checksum_rtol:
                fail(f"{name}: {field} diverged {b[field]:.9g} -> "
                     f"{c[field]:.9g} (rel {rel:.3g} > {args.checksum_rtol:.3g})")
                failures += 1

        if ("updates_per_sec" in b and "updates_per_sec" in c
                and b["updates_per_sec"] > 0):
            ratio = c["updates_per_sec"] / b["updates_per_sec"]
            if ratio < 1.0 - args.updates_tolerance:
                fail(f"{name}: updates_per_sec regressed "
                     f"{b['updates_per_sec']:.4g} -> {c['updates_per_sec']:.4g} "
                     f"({ratio:.2f}x, allowed down to "
                     f"{1.0 - args.updates_tolerance:.2f}x)")
                failures += 1
            else:
                print(f"bench_compare: ok {name}: updates_per_sec "
                      f"{b['updates_per_sec']:.4g} -> "
                      f"{c['updates_per_sec']:.4g} ({ratio:.2f}x)")

        # One-sided growth gates (huge-scale suite): memory footprint and
        # end-to-end migration latency only fail upward — improvements pass.
        for field, tolerance in (("bytes_per_vm", args.bytes_tolerance),
                                 ("ns_per_migration", args.migration_tolerance),
                                 ("fold_p99_ns", args.fold_tolerance)):
            if field in b and field in c and b[field] > 0:
                ratio = c[field] / b[field]
                if ratio > 1.0 + tolerance:
                    fail(f"{name}: {field} regressed {b[field]:.4g} -> "
                         f"{c[field]:.4g} ({ratio:.2f}x, allowed up to "
                         f"{1.0 + tolerance:.2f}x)")
                    failures += 1
                else:
                    print(f"bench_compare: ok {name}: {field} "
                          f"{b[field]:.4g} -> {c[field]:.4g} ({ratio:.2f}x)")

        dr = abs(c["cost_reduction_pct"] - b["cost_reduction_pct"])
        if dr > args.reduction_atol:
            fail(f"{name}: cost_reduction_pct diverged "
                 f"{b['cost_reduction_pct']:.4f} -> {c['cost_reduction_pct']:.4f} "
                 f"(|Δ| {dr:.3f} > {args.reduction_atol:.3f} pp)")
            failures += 1

    if compared == 0:
        fail("no (suite, scenario) pairs in common — wrong files?")
        failures += 1
    print(f"bench_compare: {compared} scenarios compared, {new} new, "
          f"{skipped} skipped, {failures} failure(s)")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="+", metavar="FILE",
                        help="--validate FILE, or BASELINE CANDIDATE")
    parser.add_argument("--validate", action="store_true",
                        help="schema-check a single file instead of diffing two")
    parser.add_argument("--ns-tolerance", type=float, default=0.25,
                        help="allowed fractional ns_per_call regression (default 0.25 = +25%%)")
    parser.add_argument("--ns-floor", type=float, default=100.0,
                        help="ns_per_call below this never fails the tolerance check "
                             "(timer noise floor for O(1) operations; default 100 ns)")
    parser.add_argument("--checksum-rtol", type=float, default=1e-6,
                        help="allowed relative checksum divergence at equal call counts")
    parser.add_argument("--reduction-atol", type=float, default=1.0,
                        help="allowed cost_reduction_pct divergence, percentage points")
    parser.add_argument("--updates-tolerance", type=float, default=0.4,
                        help="allowed fractional updates_per_sec drop (default 0.4 "
                             "= -40%%; increases never fail)")
    parser.add_argument("--bytes-tolerance", type=float, default=0.25,
                        help="allowed fractional bytes_per_vm growth (default 0.25 "
                             "= +25%%; decreases never fail)")
    parser.add_argument("--migration-tolerance", type=float, default=0.5,
                        help="allowed fractional ns_per_migration growth (default "
                             "0.5 = +50%%; decreases never fail)")
    parser.add_argument("--fold-tolerance", type=float, default=1.0,
                        help="allowed fractional fold_p99_ns growth (default "
                             "1.0 = +100%%; decreases never fail)")
    parser.add_argument("--fail-on-new", dest="fail_on_new", action="store_true",
                        default=True,
                        help="fail when the candidate has scenarios absent from the "
                             "baseline (the default since the committed trajectory "
                             "covers every suite)")
    parser.add_argument("--allow-new", dest="fail_on_new", action="store_false",
                        help="permit candidate scenarios absent from the baseline "
                             "(local iteration on a new bench before its trajectory "
                             "row is committed)")
    args = parser.parse_args()

    if args.validate:
        if len(args.files) != 1:
            parser.error("--validate takes exactly one file")
        errors = validate(load(args.files[0]), args.files[0])
        for e in errors:
            fail(e)
        if not errors:
            print(f"bench_compare: {args.files[0]}: valid {SCHEMA}")
        return 1 if errors else 0

    if len(args.files) != 2:
        parser.error("expected BASELINE CANDIDATE (or --validate FILE)")
    baseline, candidate = load(args.files[0]), load(args.files[1])
    errors = [*validate(baseline, args.files[0]), *validate(candidate, args.files[1])]
    for e in errors:
        fail(e)
    if errors:
        return 1
    return compare(baseline, candidate, args)


if __name__ == "__main__":
    sys.exit(main())
