// score_cli — run S-CORE experiments from the command line.
//
// Wires the whole library behind flags: topology (canonical tree or fat-tree,
// any size), workload (generator intensity/seed), initial placement, token
// policy / token count, migration cost, the GA normaliser and the
// message-passing distributed runtime. Prints a summary and, optionally, the
// cost-vs-time series as CSV — enough to reproduce any of the paper's
// simulation figures at arbitrary scales without writing code.
//
// World construction is shared with score_scheduler / score_agent
// (world_builder.hpp), so a score_cli invocation and a multi-process run
// with the same flags operate on bit-identical worlds.
//
// Flag errors (unknown flags, bad values, combinations that contradict the
// selected mode) print a one-line diagnostic and exit 2.
//
// Examples:
//   score_cli --topology fattree --k 8 --vms 256 --policy hlf --ga
//   score_cli --topology canonical --racks 128 --hosts-per-rack 20
//             --vms 4096 --intensity dense --series
//   score_cli --mode distributed --vms 128 --iterations 3 --loss 0.05
//   score_cli --topology fattree --k 16 --vms 8192 --tokens 16 --threads 4
//   score_cli --mode continuous --vms 256 --epochs 8 --arrival-prob 0.3
//             --departure-prob 0.1 --save world.v2
//   score_cli --mode streaming --vms 256 --ticks 128 --batch-size 2048
//             --drift-threshold 0.08 --ingest-shards 4 --partial-reopt
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <sstream>

#include "baselines/ga_optimizer.hpp"
#include "baselines/placement.hpp"
#include "core/metrics.hpp"
#include "core/scenario_io.hpp"
#include "core/token_policy.hpp"
#include "driver/continuous.hpp"
#include "driver/convergence.hpp"
#include "driver/multi_token.hpp"
#include "driver/simulation.hpp"
#include "driver/streaming.hpp"
#include "hypervisor/distributed_runtime.hpp"
#include "util/csv.hpp"
#include "util/exec_policy.hpp"
#include "util/flags.hpp"
#include "world_builder.hpp"

namespace {

using namespace score;

/// The effective mode, honoring the deprecated --distributed alias.
std::string effective_mode(const util::Flags& flags) {
  return flags.get_bool("distributed") ? "distributed"
                                       : flags.get_string("mode");
}

/// Reject flag combinations that contradict the selected mode, with a
/// one-line diagnostic naming both the flag and the mode it needs. Only
/// flags the user actually passed are checked — defaults never conflict.
void validate_mode_combos(const util::Flags& flags) {
  const std::string mode = effective_mode(flags);
  if (mode != "centralized" && mode != "distributed" &&
      mode != "continuous" && mode != "streaming") {
    throw std::invalid_argument(
        "--mode must be centralized, distributed, continuous or streaming");
  }
  const auto require = [&](const char* flag, bool ok, const char* needs) {
    if (flags.is_set(flag) && !ok) {
      throw std::invalid_argument(std::string("--") + flag +
                                  " is incompatible with --mode " + mode +
                                  " (requires " + needs + ")");
    }
  };
  const bool dist = mode == "distributed";
  const bool cont = mode == "continuous";
  const bool strm = mode == "streaming";
  // Failure model and trace hash live in the message-passing runtime
  // (continuous mode embeds it per epoch).
  require("loss", dist || cont, "--mode distributed or continuous");
  require("budget-mb", dist || cont, "--mode distributed or continuous");
  require("trace", dist || cont, "--mode distributed or continuous");
  // Multi-token parallelism and the GA normaliser are centralized-loop
  // features (continuous and streaming modes reuse the multi-token walk).
  require("tokens", !dist, "--mode centralized, continuous or streaming");
  require("threads", !dist, "--mode centralized, continuous or streaming");
  require("ga", !dist && !cont && !strm, "--mode centralized");
  // Continuous-mode-only knobs.
  require("epochs", cont, "--mode continuous");
  require("tenant-vms", cont, "--mode continuous");
  require("arrival-prob", cont, "--mode continuous");
  require("departure-prob", cont, "--mode continuous");
  require("lifecycle-seed", cont, "--mode continuous");
  // Streaming-mode-only knobs.
  require("ticks", strm, "--mode streaming");
  require("batch-size", strm, "--mode streaming");
  require("drift-threshold", strm, "--mode streaming");
  require("ingest-shards", strm, "--mode streaming");
  require("partial-reopt", strm, "--mode streaming");
}

// Continuous-operation mode: VM lifecycle churn over dynamic traffic epochs,
// re-optimised every epoch (driver/continuous). Prints the per-epoch
// steady-state table; --save dumps the world + realized timeline as a
// scenario_io v2 snapshot, --load replays a previously dumped one.
int run_continuous(const topo::Topology& topology, const util::Flags& flags) {
  driver::ContinuousConfig cfg;
  cfg.generator.num_vms = static_cast<std::size_t>(flags.get_int("vms"));
  cfg.generator.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  cfg.dynamics.seed = cfg.generator.seed + 1;
  cfg.intensity_scale = traffic::intensity_scale(
      tools::parse_intensity(flags.get_string("intensity")));
  cfg.epochs = static_cast<std::size_t>(flags.get_int("epochs"));
  cfg.tenant_vms = static_cast<std::size_t>(flags.get_int("tenant-vms"));
  cfg.arrival_prob = flags.get_double("arrival-prob");
  cfg.departure_prob = flags.get_double("departure-prob");
  cfg.lifecycle_seed = static_cast<std::uint64_t>(flags.get_int("lifecycle-seed"));
  cfg.placement = tools::parse_placement(flags.get_string("placement"));
  cfg.server_capacity.vm_slots = static_cast<std::size_t>(flags.get_int("slots"));
  cfg.server_capacity.ram_mb = static_cast<double>(cfg.server_capacity.vm_slots) * 256.0;
  cfg.server_capacity.cpu_cores = static_cast<double>(cfg.server_capacity.vm_slots);
  cfg.iterations_per_epoch = static_cast<std::size_t>(flags.get_int("iterations"));
  cfg.engine.migration_cost = flags.get_double("cm");
  cfg.tokens = static_cast<std::size_t>(flags.get_int("tokens"));
  const int threads = static_cast<int>(flags.get_int("threads"));
  cfg.exec = threads > 0 ? util::ExecPolicy::par(static_cast<std::size_t>(threads))
                         : util::ExecPolicy::seq();
  if (flags.get_bool("distributed")) {
    cfg.mode = "distributed";
  }
  if (flags.get_double("loss") > 0.0 || flags.get_double("budget-mb") > 0.0) {
    cfg.mode = "distributed";
    cfg.runtime.message_loss_rate = flags.get_double("loss");
    cfg.runtime.migration_budget_mb = flags.get_double("budget-mb");
  }
  // --policy reaches the distributed per-epoch optimiser only; the
  // centralized multi-token path visits VMs in Round-Robin order.
  cfg.runtime.policy = flags.get_string("policy") == "rr" ||
                               flags.get_string("policy") == "round-robin"
                           ? "round-robin"
                           : "highest-level-first";

  driver::ContinuousEngine engine(topology, cfg);
  driver::SteadyStateReport report;
  if (!flags.get_string("load").empty()) {
    std::ifstream in(flags.get_string("load"));
    if (!in) throw std::runtime_error("cannot open " + flags.get_string("load"));
    const core::WorldScenario world = core::load_scenario_v2(in);
    report = engine.replay(world);
  } else {
    report = engine.run();
  }

  std::cout << "continuous S-CORE (" << report.mode << "), "
            << report.epochs.size() << " epochs, world of "
            << report.world.num_vms() << " VMs\n";
  std::cout << "epoch  active  +arr  -dep  cost_before    cost_after     "
               "fresh_reopt    ratio   migr  MB      rounds\n";
  for (const driver::EpochReport& er : report.epochs) {
    std::cout << std::setw(5) << er.epoch << std::setw(8) << er.active_vms
              << std::setw(6) << er.arrived_vms << std::setw(6)
              << er.departed_vms << "  " << std::setw(13) << er.cost_before
              << "  " << std::setw(13) << er.cost_after << "  " << std::setw(13)
              << er.fresh_cost << "  " << std::setw(6) << std::setprecision(4)
              << er.cost_ratio() << std::setprecision(6) << std::setw(7)
              << er.migrations << std::setw(8) << static_cast<long long>(er.migrated_mb)
              << std::setw(7) << er.rounds << "\n";
  }
  std::cout << "steady state: mean cost ratio vs fresh re-opt "
            << report.mean_cost_ratio() << " (max " << report.max_cost_ratio()
            << "), " << report.total_migrations() << " migrations, "
            << report.total_migrated_mb() << " MB pre-copied, "
            << report.world.timeline.size() << " lifecycle events\n";
  if (flags.get_bool("trace")) {
    std::cout << "trace hash: " << std::hex << report.trace_hash << std::dec
              << "\n";
  }
  if (!flags.get_string("save").empty()) {
    std::ofstream out(flags.get_string("save"));
    if (!out) throw std::runtime_error("cannot open " + flags.get_string("save"));
    core::save_scenario_v2(out, report.world);
    std::cout << "world snapshot (v2) written to " << flags.get_string("save")
              << "\n";
  }
  return 0;
}

// Streaming mode: flow-delta ingest folded into the live cost cache, with
// re-optimisation launched only when the cached total drifts past
// --drift-threshold (driver/streaming). Prints the per-trigger table and the
// fold/rebuild counters that show the observer seam at work.
int run_streaming(const topo::Topology& topology, const util::Flags& flags) {
  driver::StreamingConfig cfg;
  cfg.generator.num_vms = static_cast<std::size_t>(flags.get_int("vms"));
  cfg.generator.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  cfg.intensity_scale = traffic::intensity_scale(
      tools::parse_intensity(flags.get_string("intensity")));
  cfg.placement = tools::parse_placement(flags.get_string("placement"));
  cfg.server_capacity.vm_slots = static_cast<std::size_t>(flags.get_int("slots"));
  cfg.server_capacity.ram_mb = static_cast<double>(cfg.server_capacity.vm_slots) * 256.0;
  cfg.server_capacity.cpu_cores = static_cast<double>(cfg.server_capacity.vm_slots);
  cfg.placement_seed = cfg.generator.seed + 1;
  cfg.events.seed = cfg.generator.seed + 2;
  cfg.events.events_per_tick = static_cast<std::size_t>(flags.get_int("batch-size"));
  cfg.ticks = static_cast<std::size_t>(flags.get_int("ticks"));
  cfg.drift_threshold = flags.get_double("drift-threshold");
  cfg.tokens = static_cast<std::size_t>(flags.get_int("tokens"));
  const int threads = static_cast<int>(flags.get_int("threads"));
  cfg.exec = threads > 0 ? util::ExecPolicy::par(static_cast<std::size_t>(threads))
                         : util::ExecPolicy::seq();
  cfg.iterations_per_reopt = static_cast<std::size_t>(flags.get_int("iterations"));
  cfg.engine.migration_cost = flags.get_double("cm");
  cfg.ingest_shards =
      static_cast<std::size_t>(flags.get_int("ingest-shards"));
  cfg.partial_reopt = flags.get_bool("partial-reopt");

  driver::StreamingEngine engine(topology, cfg);
  const driver::StreamingReport report = engine.run();

  // A cost ratio can now legitimately be undefined (NaN: no fresh reference)
  // or +inf (zero reference, nonzero cost). Print both honestly instead of
  // the old silent 1.0.
  const auto fmt_ratio = [](double r) -> std::string {
    if (std::isnan(r)) return "n/a";
    if (std::isinf(r)) return "inf";
    std::ostringstream os;
    os << std::setprecision(4) << r;
    return os.str();
  };

  std::cout << "streaming S-CORE, " << report.ticks << " ticks, "
            << report.deltas_applied << " flow deltas ("
            << report.deltas_folded << " folded O(1), "
            << report.cache_rebuilds << " cache rebuilds)\n";
  if (report.ingest_shards > 1) {
    std::cout << "sharded ingest: " << report.ingest_shards
              << " shards, max shard-queue depth "
              << report.max_shard_queue_depth << ", "
              << report.partial_reopts << " partial re-opts\n";
  }
  std::cout << "tick   drift    cost_before    cost_after     fresh_reopt    "
               "ratio   migr  rounds  scope\n";
  for (const driver::ReoptEvent& ev : report.reopts) {
    std::cout << std::setw(5) << ev.tick << "  " << std::setw(6)
              << std::setprecision(4) << ev.drift << std::setprecision(6)
              << "  " << std::setw(13) << ev.cost_before << "  "
              << std::setw(13) << ev.cost_after << "  " << std::setw(13)
              << ev.fresh_cost << "  " << std::setw(6)
              << fmt_ratio(ev.cost_ratio()) << std::setw(7) << ev.migrations
              << std::setw(7) << ev.rounds << "  "
              << (ev.partial ? "partial" : "full") << "\n";
  }
  std::cout << "drift trigger: " << report.reopts.size()
            << " re-optimisations, " << report.deltas_per_reopt()
            << " deltas/re-opt, final cost " << report.final_cost
            << " (ratio vs fresh re-opt "
            << fmt_ratio(report.final_fresh_computed &&
                                 report.final_fresh_cost > 0.0
                             ? report.final_cost / report.final_fresh_cost
                             : report.final_fresh_computed &&
                                       report.final_cost > 0.0
                                 ? std::numeric_limits<double>::infinity()
                                 : std::numeric_limits<double>::quiet_NaN())
            << ", worst " << fmt_ratio(report.max_cost_ratio());
  if (report.undefined_cost_ratios() > 0) {
    std::cout << ", " << report.undefined_cost_ratios() << " undefined";
  }
  std::cout << ")\n";
  std::cout << "ingest latency: fold p50 " << report.fold_p50_ns()
            << " ns, p99 " << report.fold_p99_ns() << " ns; trigger p50 "
            << report.trigger_p50_ns() << " ns, p99 "
            << report.trigger_p99_ns() << " ns\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  tools::register_world_flags(flags);
  flags.add_int("tokens", 1, "concurrent tokens (>1 uses the multi-token extension, RR order)");
  flags.add_int("threads", 0,
                "worker threads for multi-token shard walks (0 = sequential; "
                "results are identical for every thread count)");
  flags.add_bool("ga", false, "also run the GA normaliser and report the ratio");
  flags.add_string("mode", "centralized",
                   "execution mode: centralized (shared-memory loop) | "
                   "distributed (message-passing dom0 runtime) | "
                   "continuous (lifecycle churn over dynamic traffic epochs) | "
                   "streaming (flow-delta ingest, drift-triggered re-opt)");
  flags.add_int("epochs", 6, "continuous mode: traffic epochs to run");
  flags.add_int("tenant-vms", 8, "continuous mode: world VMs per tenant block");
  flags.add_double("arrival-prob", 0.25,
                   "continuous mode: per-epoch dormant-tenant arrival probability");
  flags.add_double("departure-prob", 0.08,
                   "continuous mode: per-epoch active-tenant departure probability");
  flags.add_int("lifecycle-seed", 7, "continuous mode: lifecycle stream seed");
  flags.add_int("ticks", 64, "streaming mode: ingest ticks to consume");
  flags.add_int("batch-size", 1024,
                "streaming mode: flow events per ingest tick");
  flags.add_double("drift-threshold", 0.05,
                   "streaming mode: relative cached-cost drift that launches "
                   "a re-optimisation");
  flags.add_int("ingest-shards", 1,
                "streaming mode: partition drift attribution across this many "
                "VM shards (per-shard queues + triggers; 1 = global scalar)");
  flags.add_bool("partial-reopt", false,
                 "streaming mode: confine triggered re-optimisations to the "
                 "drifted shards' token ranges (needs --ingest-shards > 1)");
  flags.add_bool("distributed", false,
                 "deprecated alias for --mode distributed");
  flags.add_bool("series", false, "print the cost-vs-time series as CSV");
  flags.add_string("save", "", "write the generated scenario snapshot to this file");
  flags.add_string("load", "", "load the scenario from a snapshot instead of generating");
  flags.add_bool("trace", false,
                 "print the wire-trace hash (determinism seam; distributed "
                 "mode only)");

  try {
    if (!flags.parse(argc, argv)) {
      std::cout << flags.help("score_cli");
      return 0;
    }
    validate_mode_combos(flags);

    if (effective_mode(flags) == "streaming") {
      auto topology = tools::make_topology(flags);
      return run_streaming(*topology, flags);
    }
    if (effective_mode(flags) == "continuous") {
      auto topology = tools::make_topology(flags);
      return run_continuous(*topology, flags);
    }

    tools::World w = tools::build_world(flags);
    const core::CostModel& model = *w.model;
    traffic::TrafficMatrix& tm = *w.tm;
    core::Allocation& alloc = *w.alloc;

    if (!flags.get_string("load").empty()) {
      std::ifstream in(flags.get_string("load"));
      if (!in) throw std::runtime_error("cannot open " + flags.get_string("load"));
      core::Scenario s = core::load_scenario(in);
      if (s.allocation.num_servers() != w.topology->num_hosts()) {
        throw std::runtime_error("snapshot server count does not match the topology");
      }
      alloc = std::move(s.allocation);
      tm = std::move(s.tm);
    }
    if (!flags.get_string("save").empty()) {
      std::ofstream out(flags.get_string("save"));
      if (!out) throw std::runtime_error("cannot open " + flags.get_string("save"));
      core::save_scenario(out, alloc, tm);
      std::cout << "scenario written to " << flags.get_string("save") << "\n";
    }

    core::MigrationEngine engine(model, w.runtime.engine);

    driver::SimResult result;
    if (effective_mode(flags) == "distributed") {
      hypervisor::DistributedScoreRuntime runtime(model, alloc, tm, w.runtime);
      const hypervisor::RuntimeResult r = runtime.run();
      const driver::ConvergenceReport rep = r.report();
      std::cout << rep.mode << " S-CORE: cost " << rep.initial_cost << " -> "
                << rep.final_cost << " (" << 100.0 * rep.reduction()
                << "% reduction), " << rep.migrations << " migrations, "
                << rep.rounds << " rounds, " << rep.duration_s
                << " s simulated\n";
      std::cout << "control plane: " << rep.token_messages << " token msgs ("
                << rep.token_bytes << " B), " << r.location_messages
                << " location msgs, " << r.capacity_messages
                << " capacity msgs, " << rep.control_bytes
                << " control bytes total";
      if (r.messages_lost > 0) {
        std::cout << ", " << r.messages_lost << " lost / "
                  << r.token_reinjections << " token retransmits / "
                  << r.probe_timeouts << " probe timeouts";
      }
      std::cout << "\n";
      std::cout << "live migration: " << r.migrated_mb << " MB pre-copied in "
                << r.migration_time_s << " s";
      if (r.budget_rejected > 0) {
        std::cout << " (" << r.budget_rejected << " wins rejected by budget)";
      }
      std::cout << "\n";
      if (flags.get_bool("trace")) {
        std::cout << "trace hash: " << std::hex << r.trace_hash << std::dec
                  << " (epoch " << r.final_epoch << ", ring position "
                  << r.final_ring_pos << ")\n";
      }
      return 0;
    }

    if (flags.get_int("tokens") > 1) {
      driver::MultiTokenConfig mcfg;
      mcfg.tokens = static_cast<std::size_t>(flags.get_int("tokens"));
      mcfg.iterations = static_cast<std::size_t>(flags.get_int("iterations"));
      const int threads = static_cast<int>(flags.get_int("threads"));
      mcfg.policy = threads > 0
                        ? util::ExecPolicy::par(static_cast<std::size_t>(threads))
                        : util::ExecPolicy::seq();
      driver::MultiTokenSimulation sim(engine, alloc, tm);
      result = sim.run(mcfg);
    } else {
      auto policy = core::make_policy(
          flags.get_string("policy"),
          static_cast<std::uint64_t>(flags.get_int("seed")));
      driver::SimConfig scfg;
      scfg.iterations = static_cast<std::size_t>(flags.get_int("iterations"));
      driver::ScoreSimulation sim(engine, *policy, alloc, tm);
      result = sim.run(scfg);
    }

    const driver::ConvergenceReport rep = driver::summarize(result);
    std::cout << rep.mode << " S-CORE: cost " << rep.initial_cost << " -> "
              << rep.final_cost << " (" << 100.0 * rep.reduction()
              << "% reduction), " << rep.migrations << " migrations, "
              << rep.rounds << " rounds, " << rep.duration_s
              << " s simulated\n";

    const auto loads = core::link_loads_for(*w.topology, alloc, tm);
    std::cout << "max utilisation after: core " << loads.max_utilization(3)
              << ", aggregation " << loads.max_utilization(2) << ", ToR "
              << loads.max_utilization(1) << "\n";

    if (flags.get_bool("ga")) {
      baselines::GaConfig gcfg;
      gcfg.population = 96;
      gcfg.max_generations = 400;
      gcfg.stop_window = 20;
      baselines::GaOptimizer ga(model, gcfg);
      // Normalise against the same starting state.
      core::ServerCapacity cap;
      cap.vm_slots = static_cast<std::size_t>(flags.get_int("slots"));
      cap.ram_mb = static_cast<double>(cap.vm_slots) * 256.0;
      cap.cpu_cores = static_cast<double>(cap.vm_slots);
      util::Rng rng2(static_cast<std::uint64_t>(flags.get_int("seed")) + 1);
      core::Allocation fresh = baselines::make_allocation(
          *w.topology, cap, static_cast<std::size_t>(flags.get_int("vms")),
          core::VmSpec{}, tools::parse_placement(flags.get_string("placement")),
          rng2);
      const auto ga_res = ga.optimize(fresh, tm);
      std::cout << "GA normaliser: cost " << ga_res.best_cost << " ("
                << ga_res.generations_run << " generations); S-CORE/GA ratio "
                << result.final_cost / ga_res.best_cost << "\n";
    }

    if (flags.get_bool("series")) {
      util::CsvWriter csv;
      csv.header({"time_s", "cost", "migrations"});
      for (const auto& pt : result.series) {
        csv.row(pt.time_s, pt.cost, pt.migrations);
      }
    }
    return 0;
  } catch (const std::invalid_argument& e) {
    std::cerr << "score_cli: " << e.what() << " (--help for usage)\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "score_cli: " << e.what() << "\n";
    return 1;
  }
}
