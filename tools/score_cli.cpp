// score_cli — run S-CORE experiments from the command line.
//
// Wires the whole library behind flags: topology (canonical tree or fat-tree,
// any size), workload (generator intensity/seed), initial placement, token
// policy / token count, migration cost, the GA normaliser and the
// message-passing distributed runtime. Prints a summary and, optionally, the
// cost-vs-time series as CSV — enough to reproduce any of the paper's
// simulation figures at arbitrary scales without writing code.
//
// Examples:
//   score_cli --topology fattree --k 8 --vms 256 --policy hlf --ga
//   score_cli --topology canonical --racks 128 --hosts-per-rack 20
//             --vms 4096 --intensity dense --series
//   score_cli --mode distributed --vms 128 --iterations 3 --loss 0.05
//   score_cli --topology fattree --k 16 --vms 8192 --tokens 16 --threads 4
//   score_cli --mode continuous --vms 256 --epochs 8 --arrival-prob 0.3
//             --departure-prob 0.1 --save world.v2
#include <fstream>
#include <iomanip>
#include <iostream>

#include "baselines/ga_optimizer.hpp"
#include "baselines/placement.hpp"
#include "core/metrics.hpp"
#include "driver/continuous.hpp"
#include "driver/convergence.hpp"
#include "driver/multi_token.hpp"
#include "core/scenario_io.hpp"
#include "driver/simulation.hpp"
#include "core/token_policy.hpp"
#include "hypervisor/distributed_runtime.hpp"
#include "topology/canonical_tree.hpp"
#include "topology/fat_tree.hpp"
#include "topology/leaf_spine.hpp"
#include "traffic/generator.hpp"
#include "util/csv.hpp"
#include "util/exec_policy.hpp"
#include "util/flags.hpp"

namespace {

using namespace score;

std::unique_ptr<topo::Topology> make_topology(const util::Flags& flags) {
  if (flags.get_string("topology") == "fattree") {
    topo::FatTreeConfig cfg;
    cfg.k = static_cast<std::size_t>(flags.get_int("k"));
    return std::make_unique<topo::FatTree>(cfg);
  }
  if (flags.get_string("topology") == "leafspine") {
    topo::LeafSpineConfig cfg;
    cfg.leaves = static_cast<std::size_t>(flags.get_int("racks"));
    cfg.hosts_per_leaf = static_cast<std::size_t>(flags.get_int("hosts-per-rack"));
    cfg.spines = static_cast<std::size_t>(flags.get_int("cores"));
    return std::make_unique<topo::LeafSpine>(cfg);
  }
  if (flags.get_string("topology") == "canonical") {
    topo::CanonicalTreeConfig cfg;
    cfg.racks = static_cast<std::size_t>(flags.get_int("racks"));
    cfg.hosts_per_rack = static_cast<std::size_t>(flags.get_int("hosts-per-rack"));
    cfg.racks_per_pod = static_cast<std::size_t>(flags.get_int("racks-per-pod"));
    cfg.cores = static_cast<std::size_t>(flags.get_int("cores"));
    return std::make_unique<topo::CanonicalTree>(cfg);
  }
  throw std::invalid_argument("--topology must be canonical, fattree or leafspine");
}

traffic::Intensity parse_intensity(const std::string& name) {
  if (name == "sparse") return traffic::Intensity::kSparse;
  if (name == "medium") return traffic::Intensity::kMedium;
  if (name == "dense") return traffic::Intensity::kDense;
  throw std::invalid_argument("--intensity must be sparse, medium or dense");
}

baselines::PlacementStrategy parse_placement(const std::string& name) {
  if (name == "random") return baselines::PlacementStrategy::kRandom;
  if (name == "round-robin") return baselines::PlacementStrategy::kRoundRobin;
  if (name == "packed") return baselines::PlacementStrategy::kPacked;
  throw std::invalid_argument("--placement must be random, round-robin or packed");
}

// Continuous-operation mode: VM lifecycle churn over dynamic traffic epochs,
// re-optimised every epoch (driver/continuous). Prints the per-epoch
// steady-state table; --save dumps the world + realized timeline as a
// scenario_io v2 snapshot, --load replays a previously dumped one.
int run_continuous(const topo::Topology& topology, const util::Flags& flags) {
  driver::ContinuousConfig cfg;
  cfg.generator.num_vms = static_cast<std::size_t>(flags.get_int("vms"));
  cfg.generator.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  cfg.dynamics.seed = cfg.generator.seed + 1;
  cfg.intensity_scale =
      traffic::intensity_scale(parse_intensity(flags.get_string("intensity")));
  cfg.epochs = static_cast<std::size_t>(flags.get_int("epochs"));
  cfg.tenant_vms = static_cast<std::size_t>(flags.get_int("tenant-vms"));
  cfg.arrival_prob = flags.get_double("arrival-prob");
  cfg.departure_prob = flags.get_double("departure-prob");
  cfg.lifecycle_seed = static_cast<std::uint64_t>(flags.get_int("lifecycle-seed"));
  cfg.placement = parse_placement(flags.get_string("placement"));
  cfg.server_capacity.vm_slots = static_cast<std::size_t>(flags.get_int("slots"));
  cfg.server_capacity.ram_mb = static_cast<double>(cfg.server_capacity.vm_slots) * 256.0;
  cfg.server_capacity.cpu_cores = static_cast<double>(cfg.server_capacity.vm_slots);
  cfg.iterations_per_epoch = static_cast<std::size_t>(flags.get_int("iterations"));
  cfg.engine.migration_cost = flags.get_double("cm");
  cfg.tokens = static_cast<std::size_t>(flags.get_int("tokens"));
  const int threads = flags.get_int("threads");
  cfg.exec = threads > 0 ? util::ExecPolicy::par(static_cast<std::size_t>(threads))
                         : util::ExecPolicy::seq();
  if (flags.get_bool("distributed")) {
    cfg.mode = "distributed";
  }
  if (flags.get_double("loss") > 0.0 || flags.get_double("budget-mb") > 0.0) {
    cfg.mode = "distributed";
    cfg.runtime.message_loss_rate = flags.get_double("loss");
    cfg.runtime.migration_budget_mb = flags.get_double("budget-mb");
  }
  // --policy reaches the distributed per-epoch optimiser only; the
  // centralized multi-token path visits VMs in Round-Robin order.
  cfg.runtime.policy = flags.get_string("policy") == "rr" ||
                               flags.get_string("policy") == "round-robin"
                           ? "round-robin"
                           : "highest-level-first";

  driver::ContinuousEngine engine(topology, cfg);
  driver::SteadyStateReport report;
  if (!flags.get_string("load").empty()) {
    std::ifstream in(flags.get_string("load"));
    if (!in) throw std::runtime_error("cannot open " + flags.get_string("load"));
    const core::WorldScenario world = core::load_scenario_v2(in);
    report = engine.replay(world);
  } else {
    report = engine.run();
  }

  std::cout << "continuous S-CORE (" << report.mode << "), "
            << report.epochs.size() << " epochs, world of "
            << report.world.num_vms() << " VMs\n";
  std::cout << "epoch  active  +arr  -dep  cost_before    cost_after     "
               "fresh_reopt    ratio   migr  MB      rounds\n";
  for (const driver::EpochReport& er : report.epochs) {
    std::cout << std::setw(5) << er.epoch << std::setw(8) << er.active_vms
              << std::setw(6) << er.arrived_vms << std::setw(6)
              << er.departed_vms << "  " << std::setw(13) << er.cost_before
              << "  " << std::setw(13) << er.cost_after << "  " << std::setw(13)
              << er.fresh_cost << "  " << std::setw(6) << std::setprecision(4)
              << er.cost_ratio() << std::setprecision(6) << std::setw(7)
              << er.migrations << std::setw(8) << static_cast<long long>(er.migrated_mb)
              << std::setw(7) << er.rounds << "\n";
  }
  std::cout << "steady state: mean cost ratio vs fresh re-opt "
            << report.mean_cost_ratio() << " (max " << report.max_cost_ratio()
            << "), " << report.total_migrations() << " migrations, "
            << report.total_migrated_mb() << " MB pre-copied, "
            << report.world.timeline.size() << " lifecycle events\n";
  if (flags.get_bool("trace")) {
    std::cout << "trace hash: " << std::hex << report.trace_hash << std::dec
              << "\n";
  }
  if (!flags.get_string("save").empty()) {
    std::ofstream out(flags.get_string("save"));
    if (!out) throw std::runtime_error("cannot open " + flags.get_string("save"));
    core::save_scenario_v2(out, report.world);
    std::cout << "world snapshot (v2) written to " << flags.get_string("save")
              << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.add_string("topology", "canonical", "canonical | fattree | leafspine");
  flags.add_int("racks", 32, "canonical tree: number of racks");
  flags.add_int("hosts-per-rack", 5, "canonical tree: hosts per rack");
  flags.add_int("racks-per-pod", 4, "canonical tree: racks per aggregation pod");
  flags.add_int("cores", 4, "canonical tree: core switches");
  flags.add_int("k", 8, "fat-tree arity (even)");
  flags.add_int("vms", 320, "fleet size");
  flags.add_int("slots", 4, "VM slots per server");
  flags.add_string("intensity", "sparse", "sparse | medium (x10) | dense (x50)");
  flags.add_int("seed", 42, "workload / placement seed");
  flags.add_string("placement", "random", "initial placement: random | round-robin | packed");
  flags.add_string("policy", "hlf", "token policy: rr | hlf | random | htf");
  flags.add_int("tokens", 1, "concurrent tokens (>1 uses the multi-token extension, RR order)");
  flags.add_int("threads", 0,
                "worker threads for multi-token shard walks (0 = sequential; "
                "results are identical for every thread count)");
  flags.add_int("iterations", 8, "max token-passing iterations");
  flags.add_double("cm", 0.0, "migration cost c_m (cost units)");
  flags.add_bool("ga", false, "also run the GA normaliser and report the ratio");
  flags.add_string("mode", "centralized",
                   "execution mode: centralized (shared-memory loop) | "
                   "distributed (message-passing dom0 runtime) | "
                   "continuous (lifecycle churn over dynamic traffic epochs)");
  flags.add_int("epochs", 6, "continuous mode: traffic epochs to run");
  flags.add_int("tenant-vms", 8, "continuous mode: world VMs per tenant block");
  flags.add_double("arrival-prob", 0.25,
                   "continuous mode: per-epoch dormant-tenant arrival probability");
  flags.add_double("departure-prob", 0.08,
                   "continuous mode: per-epoch active-tenant departure probability");
  flags.add_int("lifecycle-seed", 7, "continuous mode: lifecycle stream seed");
  flags.add_bool("distributed", false,
                 "deprecated alias for --mode distributed");
  flags.add_bool("series", false, "print the cost-vs-time series as CSV");
  flags.add_string("save", "", "write the generated scenario snapshot to this file");
  flags.add_string("load", "", "load the scenario from a snapshot instead of generating");
  flags.add_double("loss", 0.0, "control-message loss rate (distributed mode only)");
  flags.add_double("budget-mb", 0.0,
                   "migration-cost budget: total modeled pre-copy MB "
                   "(0 = unlimited; distributed mode only)");
  flags.add_bool("trace", false,
                 "print the wire-trace hash (determinism seam; distributed "
                 "mode only)");

  try {
    if (!flags.parse(argc, argv)) {
      std::cout << flags.help("score_cli");
      return 0;
    }

    auto topology = make_topology(flags);

    if (flags.get_string("mode") == "continuous") {
      return run_continuous(*topology, flags);
    }

    core::CostModel model(*topology,
                          core::LinkWeights::exponential(topology->max_level()));

    traffic::GeneratorConfig gen;
    gen.num_vms = static_cast<std::size_t>(flags.get_int("vms"));
    gen.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    auto tm = traffic::generate_traffic(gen, parse_intensity(flags.get_string("intensity")));

    core::ServerCapacity cap;
    cap.vm_slots = static_cast<std::size_t>(flags.get_int("slots"));
    cap.ram_mb = static_cast<double>(cap.vm_slots) * 256.0;
    cap.cpu_cores = static_cast<double>(cap.vm_slots);
    util::Rng rng(gen.seed + 1);
    core::Allocation alloc =
        flags.get_string("load").empty()
            ? baselines::make_allocation(
                  *topology, cap, gen.num_vms, core::VmSpec{},
                  parse_placement(flags.get_string("placement")), rng)
            : core::Allocation(1, core::ServerCapacity{});  // replaced below
    if (!flags.get_string("load").empty()) {
      std::ifstream in(flags.get_string("load"));
      if (!in) throw std::runtime_error("cannot open " + flags.get_string("load"));
      core::Scenario s = core::load_scenario(in);
      if (s.allocation.num_servers() != topology->num_hosts()) {
        throw std::runtime_error("snapshot server count does not match the topology");
      }
      alloc = std::move(s.allocation);
      tm = std::move(s.tm);
    }
    if (!flags.get_string("save").empty()) {
      std::ofstream out(flags.get_string("save"));
      if (!out) throw std::runtime_error("cannot open " + flags.get_string("save"));
      core::save_scenario(out, alloc, tm);
      std::cout << "scenario written to " << flags.get_string("save") << "\n";
    }

    core::EngineConfig ecfg;
    ecfg.migration_cost = flags.get_double("cm");
    core::MigrationEngine engine(model, ecfg);

    const std::string mode = flags.get_bool("distributed")
                                 ? "distributed"
                                 : flags.get_string("mode");
    if (mode != "centralized" && mode != "distributed") {
      throw std::invalid_argument(
          "--mode must be centralized, distributed or continuous");
    }

    driver::SimResult result;
    if (mode == "distributed") {
      hypervisor::RuntimeConfig rcfg;
      rcfg.policy = flags.get_string("policy") == "rr" ||
                            flags.get_string("policy") == "round-robin"
                        ? "round-robin"
                        : "highest-level-first";
      rcfg.engine = ecfg;
      rcfg.iterations = static_cast<std::size_t>(flags.get_int("iterations"));
      rcfg.message_loss_rate = flags.get_double("loss");
      rcfg.migration_budget_mb = flags.get_double("budget-mb");
      hypervisor::DistributedScoreRuntime runtime(model, alloc, tm, rcfg);
      const hypervisor::RuntimeResult r = runtime.run();
      const driver::ConvergenceReport rep = r.report();
      std::cout << rep.mode << " S-CORE: cost " << rep.initial_cost << " -> "
                << rep.final_cost << " (" << 100.0 * rep.reduction()
                << "% reduction), " << rep.migrations << " migrations, "
                << rep.rounds << " rounds, " << rep.duration_s
                << " s simulated\n";
      std::cout << "control plane: " << rep.token_messages << " token msgs ("
                << rep.token_bytes << " B), " << r.location_messages
                << " location msgs, " << r.capacity_messages
                << " capacity msgs, " << rep.control_bytes
                << " control bytes total";
      if (r.messages_lost > 0) {
        std::cout << ", " << r.messages_lost << " lost / "
                  << r.token_reinjections << " token retransmits / "
                  << r.probe_timeouts << " probe timeouts";
      }
      std::cout << "\n";
      std::cout << "live migration: " << r.migrated_mb << " MB pre-copied in "
                << r.migration_time_s << " s";
      if (r.budget_rejected > 0) {
        std::cout << " (" << r.budget_rejected << " wins rejected by budget)";
      }
      std::cout << "\n";
      if (flags.get_bool("trace")) {
        std::cout << "trace hash: " << std::hex << r.trace_hash << std::dec
                  << " (epoch " << r.final_epoch << ", ring position "
                  << r.final_ring_pos << ")\n";
      }
      return 0;
    }

    if (flags.get_int("tokens") > 1) {
      driver::MultiTokenConfig mcfg;
      mcfg.tokens = static_cast<std::size_t>(flags.get_int("tokens"));
      mcfg.iterations = static_cast<std::size_t>(flags.get_int("iterations"));
      const int threads = flags.get_int("threads");
      mcfg.policy = threads > 0
                        ? util::ExecPolicy::par(static_cast<std::size_t>(threads))
                        : util::ExecPolicy::seq();
      driver::MultiTokenSimulation sim(engine, alloc, tm);
      result = sim.run(mcfg);
    } else {
      auto policy = core::make_policy(flags.get_string("policy"), gen.seed);
      driver::SimConfig scfg;
      scfg.iterations = static_cast<std::size_t>(flags.get_int("iterations"));
      driver::ScoreSimulation sim(engine, *policy, alloc, tm);
      result = sim.run(scfg);
    }

    const driver::ConvergenceReport rep = driver::summarize(result);
    std::cout << rep.mode << " S-CORE: cost " << rep.initial_cost << " -> "
              << rep.final_cost << " (" << 100.0 * rep.reduction()
              << "% reduction), " << rep.migrations << " migrations, "
              << rep.rounds << " rounds, " << rep.duration_s
              << " s simulated\n";

    const auto loads = core::link_loads_for(*topology, alloc, tm);
    std::cout << "max utilisation after: core " << loads.max_utilization(3)
              << ", aggregation " << loads.max_utilization(2) << ", ToR "
              << loads.max_utilization(1) << "\n";

    if (flags.get_bool("ga")) {
      baselines::GaConfig gcfg;
      gcfg.population = 96;
      gcfg.max_generations = 400;
      gcfg.stop_window = 20;
      baselines::GaOptimizer ga(model, gcfg);
      // Normalise against the same starting state.
      util::Rng rng2(gen.seed + 1);
      core::Allocation fresh = baselines::make_allocation(
          *topology, cap, gen.num_vms, core::VmSpec{},
          parse_placement(flags.get_string("placement")), rng2);
      const auto ga_res = ga.optimize(fresh, tm);
      std::cout << "GA normaliser: cost " << ga_res.best_cost << " ("
                << ga_res.generations_run << " generations); S-CORE/GA ratio "
                << result.final_cost / ga_res.best_cost << "\n";
    }

    if (flags.get_bool("series")) {
      util::CsvWriter csv;
      csv.header({"time_s", "cost", "migrations"});
      for (const auto& pt : result.series) {
        csv.row(pt.time_s, pt.cost, pt.migrations);
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "score_cli: " << e.what() << "\n\n" << flags.help("score_cli");
    return 1;
  }
}
