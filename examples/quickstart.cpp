// Quickstart: the smallest end-to-end S-CORE run.
//
// Builds a small canonical-tree data center, generates a realistic traffic
// matrix, places VMs at random (the typical traffic-agnostic starting point),
// then lets S-CORE's distributed token-driven migration reduce the
// network-wide communication cost. Prints the before/after summary.
//
// Run:  ./quickstart
#include <cstdio>

#include "baselines/placement.hpp"
#include "core/cost_model.hpp"
#include "driver/simulation.hpp"
#include "core/token_policy.hpp"
#include "topology/canonical_tree.hpp"
#include "traffic/generator.hpp"

int main() {
  using namespace score;

  // 1. Topology: 16 racks x 5 hosts, 4 racks per aggregation pod, 2 cores.
  topo::CanonicalTreeConfig tcfg;
  tcfg.racks = 16;
  tcfg.hosts_per_rack = 5;
  tcfg.racks_per_pod = 4;
  tcfg.cores = 2;
  topo::CanonicalTree topology(tcfg);

  // 2. Workload: 160 VMs in service clusters with a long-tailed flow mix.
  traffic::GeneratorConfig gcfg;
  gcfg.num_vms = 160;
  gcfg.seed = 7;
  traffic::TrafficMatrix tm = traffic::generate_traffic(gcfg);

  // 3. Traffic-agnostic initial placement (random), 4 VM slots per server.
  core::ServerCapacity cap;
  cap.vm_slots = 4;
  cap.ram_mb = 1024.0;
  cap.cpu_cores = 4.0;
  util::Rng rng(1);
  core::Allocation alloc = baselines::make_allocation(
      topology, cap, gcfg.num_vms, core::VmSpec{},
      baselines::PlacementStrategy::kRandom, rng);

  // 4. S-CORE: exponential link weights (paper default), HLF token policy.
  core::CostModel model(topology, core::LinkWeights::exponential(3));
  core::MigrationEngine engine(model);
  core::HighestLevelFirstPolicy policy;
  driver::ScoreSimulation sim(engine, policy, alloc, tm);
  const driver::SimResult result = sim.run();

  std::printf("S-CORE quickstart (%zu VMs on %zu hosts)\n", tm.num_vms(),
              topology.num_hosts());
  std::printf("  initial communication cost : %.3e\n", result.initial_cost);
  std::printf("  final communication cost   : %.3e\n", result.final_cost);
  std::printf("  reduction                  : %.1f%%\n",
              100.0 * result.reduction());
  std::printf("  migrations                 : %zu\n", result.total_migrations);
  std::printf("  token iterations           : %zu\n", result.iterations.size());
  std::printf("  simulated time             : %.1f s\n", result.duration_s);
  return 0;
}
