// The fully distributed S-CORE deployment (paper §V), end to end.
//
// Unlike the other examples, nothing here is evaluated centrally: per-host
// dom0 agents exchange token / location-request / capacity-request messages
// over the simulated fabric, measure traffic through their own flow tables,
// and migrate VMs on Theorem-1 decisions computed from probed state only.
// The run prints the control-plane footprint (the paper's scalability
// argument: one O(|V|) token plus per-hold probes bounded by the neighbour
// count) next to the achieved cost reduction.
//
// Run:  ./distributed_control_plane
#include <cstdio>

#include "baselines/placement.hpp"
#include "hypervisor/distributed_runtime.hpp"
#include "hypervisor/ipam.hpp"
#include "hypervisor/token_codec.hpp"
#include "topology/canonical_tree.hpp"
#include "traffic/generator.hpp"

int main() {
  using namespace score;

  topo::CanonicalTreeConfig tcfg;
  tcfg.racks = 16;
  tcfg.hosts_per_rack = 5;
  tcfg.racks_per_pod = 4;
  tcfg.cores = 2;
  topo::CanonicalTree topology(tcfg);

  traffic::GeneratorConfig gcfg;
  gcfg.num_vms = 200;
  gcfg.seed = 21;
  traffic::TrafficMatrix tm = traffic::generate_traffic(gcfg);

  core::ServerCapacity cap;
  cap.vm_slots = 4;
  cap.ram_mb = 1024.0;
  cap.cpu_cores = 4.0;
  util::Rng rng(2);
  core::Allocation alloc = baselines::make_allocation(
      topology, cap, gcfg.num_vms, core::VmSpec{},
      baselines::PlacementStrategy::kRandom, rng);

  core::CostModel model(topology, core::LinkWeights::exponential(3));

  // Show the addressing scheme agents rely on (§IV rack subnets).
  hypervisor::Ipam ipam(topology);
  std::printf("dom0 addressing: host 0 = %s, host 79 = %s (rack %d)\n",
              hypervisor::format_ipv4(ipam.host_address(0)).c_str(),
              hypervisor::format_ipv4(ipam.host_address(79)).c_str(),
              topology.rack_of(79));

  hypervisor::RuntimeConfig rcfg;
  rcfg.policy = "highest-level-first";
  rcfg.iterations = 6;
  hypervisor::DistributedScoreRuntime runtime(model, alloc, tm, rcfg);
  const hypervisor::RuntimeResult res = runtime.run();

  std::printf("\ndistributed S-CORE over %zu hosts, %zu VMs:\n",
              topology.num_hosts(), tm.num_vms());
  std::printf("  cost            : %.3e -> %.3e (%.1f%% reduction)\n",
              res.initial_cost, res.final_cost, 100.0 * res.reduction());
  std::printf("  migrations      : %zu\n", res.total_migrations);
  std::printf("  iterations      : %zu\n", res.iterations.size());
  std::printf("  simulated time  : %.1f s\n", res.duration_s);
  std::printf("\ncontrol-plane footprint:\n");
  std::printf("  token messages    : %llu (one per hold; token = %zu bytes)\n",
              static_cast<unsigned long long>(res.token_messages),
              hypervisor::token_frame_bytes(tm.num_vms()));
  std::printf("  location messages : %llu (request+response per peer probe)\n",
              static_cast<unsigned long long>(res.location_messages));
  std::printf("  capacity messages : %llu (request+response per candidate)\n",
              static_cast<unsigned long long>(res.capacity_messages));
  std::printf("  control bytes     : %llu (%.1f KB per iteration)\n",
              static_cast<unsigned long long>(res.control_bytes),
              static_cast<double>(res.control_bytes) /
                  static_cast<double>(res.iterations.size()) / 1024.0);

  std::printf("\nper-iteration migrated ratio (Fig. 2 shape):");
  for (const auto& it : res.iterations) std::printf(" %.3f", it.migrated_ratio);
  std::printf("\n");
  return 0;
}
