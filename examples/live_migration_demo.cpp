// The dom0 pipeline end to end: flow monitoring -> token -> decision ->
// live migration (paper §V-B).
//
// Plays the role of the hypervisor control plane on one host:
//   1. feeds Open-vSwitch-style datapath samples into the flow table,
//   2. computes the per-peer aggregate rates for the token-holding VM
//      (§V-B.3 throughput calculation),
//   3. builds the HLF token wire message (§V-B.2),
//   4. makes the Theorem-1 migration decision,
//   5. simulates the resulting pre-copy live migration and prints the
//      transfer/downtime figures the testbed measures (Fig. 5).
//
// Run:  ./live_migration_demo
#include <cstdio>

#include "core/cost_model.hpp"
#include "core/migration_engine.hpp"
#include "hypervisor/flow_table.hpp"
#include "hypervisor/live_migration.hpp"
#include "hypervisor/token_codec.hpp"
#include "topology/canonical_tree.hpp"

int main() {
  using namespace score;

  // --- 1. flow monitoring ----------------------------------------------------
  // VM ids double as IPv4 addresses (the Xen implementation's convention).
  hypervisor::FlowTable flows;
  const hypervisor::IpAddr vm0 = 0x0A000001, vm1 = 0x0A000002, vm2 = 0x0A010003;
  // 60 s of samples: vm0<->vm2 is an elephant, vm0<->vm1 background mice.
  for (int t = 0; t < 60; ++t) {
    flows.update({vm0, vm2, 5001, 443, 6}, 12'500'000, 8300, t);  // ~100 Mb/s
    flows.update({vm0, vm1, 5002, 80, 6}, 60'000, 60, t);         // ~0.5 Mb/s
    flows.update({vm1, vm0, 5003, 80, 6}, 30'000, 30, t);
  }
  std::printf("flow table: %zu flows tracked for VM0\n",
              flows.flows_for_ip(vm0).size());

  // --- 2. throughput calculation (token holder = VM0) ------------------------
  const auto peers = flows.peer_rates_Bps(vm0, 60.0);
  for (const auto& [peer, rate] : peers) {
    std::printf("  peer %08x: %.2f Mb/s aggregate\n", peer, rate * 8.0 / 1e6);
  }

  // --- 3. token message -------------------------------------------------------
  const std::vector<hypervisor::TokenEntry> entries{
      {vm0, 3}, {vm1, 1}, {vm2, 3}};
  const auto wire = hypervisor::encode_hlf_token(entries);
  std::printf("HLF token: %zu entries, %zu bytes on the wire\n", entries.size(),
              wire.size());

  // --- 4. migration decision --------------------------------------------------
  topo::CanonicalTreeConfig tcfg;
  tcfg.racks = 4;
  tcfg.hosts_per_rack = 2;
  tcfg.racks_per_pod = 2;
  tcfg.cores = 1;
  topo::CanonicalTree topology(tcfg);
  core::CostModel model(topology, core::LinkWeights::exponential(3));
  core::Allocation alloc(topology.num_hosts(), core::ServerCapacity{});
  const core::VmId u = alloc.add_vm(core::VmSpec{}, 0);   // VM0 on host 0
  const core::VmId m = alloc.add_vm(core::VmSpec{}, 1);   // VM1 rack-local
  const core::VmId e = alloc.add_vm(core::VmSpec{}, 7);   // VM2 across the core

  traffic::TrafficMatrix tm(3);
  // Feed the measured rates into the TM the decision consumes.
  tm.set(u, e, flows.aggregate_rate_Bps(vm0, vm2, 60.0) * 8.0);
  tm.set(u, m, flows.aggregate_rate_Bps(vm0, vm1, 60.0) * 8.0);

  core::MigrationEngine engine(model);
  const core::Decision d = engine.evaluate(alloc, tm, u);
  std::printf("decision for VM0: migrate=%s target=host%u deltaC=%.3e\n",
              d.migrate ? "yes" : "no", d.target, d.delta);

  // --- 5. live migration ------------------------------------------------------
  if (d.migrate) {
    hypervisor::PreCopyMigrationModel migration;
    util::Rng rng(2014);
    for (double bg : {0.0, 0.5, 1.0}) {
      const auto out = migration.simulate(rng, bg);
      std::printf("  bg-load %.0f%%: %6.1f MB moved in %.2f s, downtime %.1f ms "
                  "(%d pre-copy rounds)\n",
                  bg * 100.0, out.migrated_mb, out.total_time_s, out.downtime_ms,
                  out.precopy_rounds);
    }
    alloc.migrate(u, d.target);
    std::printf("VM0 now colocated with its elephant peer: pair level %d\n",
                model.level(alloc, u, e));
  }
  return 0;
}
