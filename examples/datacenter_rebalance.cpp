// Always-on operation: S-CORE adapting to workload churn.
//
// The paper positions S-CORE as an *always-on* control loop (unlike initial-
// placement schemes): when traffic dynamics change, the next token rounds
// re-localise the new hotspots. This example
//   1. runs S-CORE to a stable allocation on workload A,
//   2. deploys a new service whose members are scattered (workload B),
//   3. runs further token iterations with a non-zero migration cost c_m,
// and reports how few migrations the second phase needs (only the new
// service moves — stability, Fig. 2's plateau).
//
// Run:  ./datacenter_rebalance
#include <cstdio>

#include "baselines/placement.hpp"
#include "driver/simulation.hpp"
#include "core/token_policy.hpp"
#include "topology/fat_tree.hpp"
#include "traffic/generator.hpp"

int main() {
  using namespace score;

  topo::FatTree topology(topo::FatTreeConfig{.k = 4});  // 16 hosts

  traffic::GeneratorConfig gcfg;
  gcfg.num_vms = 48;
  gcfg.seed = 17;
  traffic::TrafficMatrix tm = traffic::generate_traffic(gcfg);

  core::ServerCapacity cap;
  cap.vm_slots = 6;
  cap.ram_mb = 6 * 256.0;
  cap.cpu_cores = 6.0;
  util::Rng rng(3);
  core::Allocation alloc = baselines::make_allocation(
      topology, cap, gcfg.num_vms, core::VmSpec{},
      baselines::PlacementStrategy::kRandom, rng);

  core::CostModel model(topology, core::LinkWeights::exponential(3));

  // Operators usually price migrations: require the gain of a move to exceed
  // a fraction of a typical heavy pair's cost.
  core::EngineConfig ecfg;
  ecfg.migration_cost = model.pair_cost(1e5, 1);
  core::MigrationEngine engine(model, ecfg);

  std::printf("Phase 1: initial convergence on workload A\n");
  core::RoundRobinPolicy policy_a;
  driver::ScoreSimulation sim_a(engine, policy_a, alloc, tm);
  const auto res_a = sim_a.run();
  std::printf("  cost %.3e -> %.3e (%.1f%%), %zu migrations, %zu iterations\n",
              res_a.initial_cost, res_a.final_cost, 100.0 * res_a.reduction(),
              res_a.total_migrations, res_a.iterations.size());

  // Phase 2: a new 8-VM analytics service arrives, scattered across pods,
  // with heavy all-to-frontend traffic (ids 0..7 reused as the service).
  std::printf("\nPhase 2: new service deployed; traffic matrix changes\n");
  for (traffic::VmId member = 1; member < 8; ++member) {
    tm.add(0, member, 5e6);  // 5 Mb/s to the service frontend
  }
  core::RoundRobinPolicy policy_b;
  driver::ScoreSimulation sim_b(engine, policy_b, alloc, tm);
  const auto res_b = sim_b.run();
  std::printf("  cost %.3e -> %.3e (%.1f%%), %zu migrations, %zu iterations\n",
              res_b.initial_cost, res_b.final_cost, 100.0 * res_b.reduction(),
              res_b.total_migrations, res_b.iterations.size());

  std::printf("\nPhase 2 needed %zu migrations vs %zu at cold start: the\n"
              "always-on loop only moves what the traffic change touched.\n",
              res_b.total_migrations, res_a.total_migrations);
  return 0;
}
