// Traffic localization: how S-CORE moves elephant flows off the core.
//
// DC measurement studies (cited in the paper) show mice flows dominate in
// number while a few elephant flows carry most bytes. This example builds a
// workload whose elephants initially cross the core, runs S-CORE, and shows
// (a) per-layer offered load before/after and (b) the communication-level
// histogram of the elephant pairs — the elephants end up rack-local, which
// is exactly the mechanism §V-C describes.
//
// Run:  ./traffic_localization
#include <cstdio>

#include "baselines/placement.hpp"
#include "core/metrics.hpp"
#include "driver/simulation.hpp"
#include "core/token_policy.hpp"
#include "topology/canonical_tree.hpp"
#include "traffic/generator.hpp"
#include "util/stats.hpp"

namespace {

using namespace score;

void print_layer_loads(const char* label, const topo::Topology& topology,
                       const core::Allocation& alloc,
                       const traffic::TrafficMatrix& tm) {
  const auto loads = core::link_loads_for(topology, alloc, tm);
  double per_layer[4] = {0, 0, 0, 0};
  for (const auto& link : topology.links()) {
    per_layer[link.level] += loads.load_bps(link.id);
  }
  std::printf("  %-7s  ToR-links: %8.2f Mb/s   agg-links: %8.2f Mb/s   "
              "core-links: %8.2f Mb/s\n",
              label, per_layer[1] / 1e6, per_layer[2] / 1e6, per_layer[3] / 1e6);
}

void print_elephant_levels(const char* label, const core::CostModel& model,
                           const core::Allocation& alloc,
                           const traffic::TrafficMatrix& tm,
                           double elephant_threshold) {
  int histogram[4] = {0, 0, 0, 0};
  for (const auto& [u, v, rate] : tm.pairs()) {
    if (rate >= elephant_threshold) {
      ++histogram[model.level(alloc, u, v)];
    }
  }
  std::printf("  %-7s  elephant pairs by level: same-host=%d rack=%d pod=%d "
              "core=%d\n",
              label, histogram[0], histogram[1], histogram[2], histogram[3]);
}

}  // namespace

int main() {
  topo::CanonicalTreeConfig tcfg;
  tcfg.racks = 16;
  tcfg.hosts_per_rack = 5;
  tcfg.racks_per_pod = 4;
  tcfg.cores = 2;
  topo::CanonicalTree topology(tcfg);

  traffic::GeneratorConfig gcfg;
  gcfg.num_vms = 200;
  gcfg.elephant_fraction = 0.15;
  gcfg.seed = 99;
  traffic::TrafficMatrix tm = traffic::generate_traffic(gcfg);

  // An elephant here: top decile of pair rates.
  std::vector<double> rates;
  for (const auto& [u, v, r] : tm.pairs()) {
    (void)u;
    (void)v;
    rates.push_back(r);
  }
  const double elephant_threshold = util::percentile(rates, 90);

  core::ServerCapacity cap;
  cap.vm_slots = 4;
  cap.ram_mb = 1024.0;
  cap.cpu_cores = 4.0;
  util::Rng rng(5);
  core::Allocation alloc = baselines::make_allocation(
      topology, cap, gcfg.num_vms, core::VmSpec{},
      baselines::PlacementStrategy::kRandom, rng);

  core::CostModel model(topology, core::LinkWeights::exponential(3));

  std::printf("Before S-CORE (random placement):\n");
  print_layer_loads("before", topology, alloc, tm);
  print_elephant_levels("before", model, alloc, tm, elephant_threshold);

  core::MigrationEngine engine(model);
  core::HighestLevelFirstPolicy policy;
  driver::ScoreSimulation sim(engine, policy, alloc, tm);
  const auto result = sim.run();

  std::printf("\nAfter S-CORE (%zu migrations, %.1f%% cost reduction):\n",
              result.total_migrations, 100.0 * result.reduction());
  print_layer_loads("after", topology, alloc, tm);
  print_elephant_levels("after", model, alloc, tm, elephant_threshold);

  std::printf("\nElephants are pulled down to host/rack level, freeing the\n"
              "oversubscribed aggregation/core layers (paper §V-C).\n");
  return 0;
}
