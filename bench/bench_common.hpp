// Shared scaffolding for the figure-reproduction benches.
//
// Default parameters are scaled down from the paper (2560-host canonical
// tree / k = 16 fat-tree, GA population 1000) so every bench finishes in
// minutes on one core while preserving the qualitative shapes. Set the
// environment variable SCORE_BENCH_SCALE=paper to run closer to paper scale
// (slower; intended for overnight runs).
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "baselines/ga_optimizer.hpp"
#include "baselines/placement.hpp"
#include "core/cached_cost_model.hpp"
#include "core/cost_model.hpp"
#include "core/metrics.hpp"
#include "driver/simulation.hpp"
#include "topology/canonical_tree.hpp"
#include "topology/fat_tree.hpp"
#include "traffic/generator.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace score::bench {

/// SCORE_BENCH_SCALE=paper rescales the shared scenario configs (and GA
/// budget) to the paper's §VI sizes — overnight runs. Independent of
/// bench_runner's --scale flag, which only adds the self-contained
/// paper-scale suite to the trajectory.
inline bool paper_scale() {
  static const bool paper = [] {
    const char* env = std::getenv("SCORE_BENCH_SCALE");
    return env != nullptr && std::string(env) == "paper";
  }();
  return paper;
}

inline topo::CanonicalTreeConfig canonical_config() {
  if (paper_scale()) return topo::CanonicalTreeConfig::paper_scale();
  topo::CanonicalTreeConfig cfg;  // 32 racks x 5 hosts = 160 hosts
  cfg.racks = 32;
  cfg.hosts_per_rack = 5;
  cfg.racks_per_pod = 4;
  cfg.cores = 4;
  return cfg;
}

inline topo::FatTreeConfig fattree_config() {
  if (paper_scale()) return topo::FatTreeConfig::paper_scale();
  return topo::FatTreeConfig{.k = 8};  // 128 hosts
}

inline core::ServerCapacity server_capacity() {
  core::ServerCapacity cap;
  cap.vm_slots = paper_scale() ? 16 : 4;
  cap.ram_mb = static_cast<double>(cap.vm_slots) * 256.0;
  cap.cpu_cores = static_cast<double>(cap.vm_slots);
  return cap;
}

/// Fleet sized at ~50% slot occupancy so migrations have room to move.
inline std::size_t fleet_size(const topo::Topology& topology) {
  return topology.num_hosts() * server_capacity().vm_slots / 2;
}

struct Scenario {
  std::unique_ptr<topo::Topology> topology;
  std::unique_ptr<core::CachedCostModel> model;
  traffic::TrafficMatrix tm{1};
  std::unique_ptr<core::Allocation> alloc;

  /// Bind the cost cache to (alloc, tm). Call only once the Scenario sits in
  /// its final location — the cache stores the addresses of `*alloc` and
  /// `tm`, and `tm` lives inline, so binding before a move would dangle.
  void bind_cache() { model->bind(*alloc, tm); }
};

inline Scenario make_scenario(bool fat_tree, traffic::Intensity intensity,
                              std::uint64_t seed = 42) {
  Scenario s;
  if (fat_tree) {
    s.topology = std::make_unique<topo::FatTree>(fattree_config());
  } else {
    s.topology = std::make_unique<topo::CanonicalTree>(canonical_config());
  }
  s.model = std::make_unique<core::CachedCostModel>(
      *s.topology, core::LinkWeights::exponential(3));
  traffic::GeneratorConfig gen;
  gen.num_vms = fleet_size(*s.topology);
  gen.seed = seed;
  // Rack-scale services with substantial cross-service chatter: even an
  // optimal allocation keeps paying for inter-rack traffic, as in the
  // paper's ToR-level TMs (Fig. 3a) where hotspots persist at the optimum.
  gen.mean_service_size = 24;
  gen.intra_service_degree = 4.0;
  gen.cross_service_prob = 0.3;
  s.tm = traffic::generate_traffic(gen, intensity);

  // Per-VM NIC demand = the VM's aggregate traffic rate (clamped to half the
  // host NIC). At sparse intensity this never binds; at x10/x50 it constrains
  // colocation (§V-C bandwidth threshold), reproducing the paper's growing
  // deviation from the GA optimum as the TM densifies.
  const core::ServerCapacity cap = server_capacity();
  std::vector<core::VmSpec> specs(gen.num_vms);
  for (traffic::VmId u = 0; u < gen.num_vms; ++u) {
    double rate = 0.0;
    for (const auto& [v, r] : s.tm.neighbors(u)) {
      (void)v;
      rate += r;
    }
    specs[u].net_bps = std::min(rate, 0.5 * cap.net_bps);
  }

  util::Rng rng(seed + 1);
  s.alloc = std::make_unique<core::Allocation>(baselines::make_allocation(
      *s.topology, cap, specs, baselines::PlacementStrategy::kRandom, rng));
  return s;
}

// --------------------------------------------------------------------------
// Machine-readable results: every bench entry is one JSON object with the
// common fields (suite, scenario, wall-time, cost reduction, migrations) plus
// free-form numeric metrics. tools/bench_runner aggregates these into
// BENCH_results.json so each PR can report a perf delta against the previous
// trajectory file.
// --------------------------------------------------------------------------

struct BenchRecord {
  std::string suite;     ///< e.g. "fig2-convergence"
  std::string scenario;  ///< e.g. "canonical-tree/round-robin"
  double wall_time_s = 0.0;          ///< harness wall-clock for this entry
  double cost_reduction_pct = 0.0;   ///< 100 * (1 - final/initial)
  std::size_t migrations = 0;
  /// Extra numeric metrics (insertion order preserved in the JSON output).
  std::vector<std::pair<std::string, double>> metrics;

  void metric(std::string name, double value) {
    metrics.emplace_back(std::move(name), value);
  }
};

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no NaN/Inf
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Collects BenchRecords and writes them as one JSON document:
///   {"schema": "...", "scale": "...", "results": [ {...}, ... ]}
class JsonReport {
 public:
  void add(BenchRecord record) { records_.push_back(std::move(record)); }

  /// Override the top-level "scale" field (bench_runner's --scale flag);
  /// defaults to the process-wide bench scale.
  void set_scale_label(std::string label) { scale_label_ = std::move(label); }

  void write(std::ostream& os) const {
    os << "{\n";
    os << "  \"schema\": \"score-bench/v1\",\n";
    os << "  \"scale\": \""
       << (scale_label_.empty() ? (paper_scale() ? "paper" : "default")
                                : scale_label_)
       << "\",\n";
    os << "  \"results\": [";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const BenchRecord& r = records_[i];
      os << (i == 0 ? "\n" : ",\n");
      os << "    {\"suite\": \"" << json_escape(r.suite) << "\", "
         << "\"scenario\": \"" << json_escape(r.scenario) << "\", "
         << "\"wall_time_s\": " << json_number(r.wall_time_s) << ", "
         << "\"cost_reduction_pct\": " << json_number(r.cost_reduction_pct)
         << ", \"migrations\": " << r.migrations;
      for (const auto& [name, value] : r.metrics) {
        os << ", \"" << json_escape(name) << "\": " << json_number(value);
      }
      os << "}";
    }
    os << "\n  ]\n}\n";
  }

  std::size_t size() const { return records_.size(); }

 private:
  std::vector<BenchRecord> records_;
  std::string scale_label_;
};

/// Monotonic wall-clock stopwatch for BenchRecord::wall_time_s.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline baselines::GaConfig ga_config() {
  baselines::GaConfig cfg;
  cfg.polish = baselines::GaPolish::kFinal;  // see GaPolish docs
  if (paper_scale()) {
    cfg.population = 1000;  // paper §VI-A
    cfg.max_generations = 2000;
    cfg.stop_window = 10;
  } else {
    cfg.population = 96;
    cfg.max_generations = 400;
    cfg.stop_window = 20;
  }
  return cfg;
}

}  // namespace score::bench
