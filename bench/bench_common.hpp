// Shared scaffolding for the figure-reproduction benches.
//
// Default parameters are scaled down from the paper (2560-host canonical
// tree / k = 16 fat-tree, GA population 1000) so every bench finishes in
// minutes on one core while preserving the qualitative shapes. Set the
// environment variable SCORE_BENCH_SCALE=paper to run closer to paper scale
// (slower; intended for overnight runs).
#pragma once

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "baselines/ga_optimizer.hpp"
#include "baselines/placement.hpp"
#include "core/cost_model.hpp"
#include "core/metrics.hpp"
#include "core/simulation.hpp"
#include "topology/canonical_tree.hpp"
#include "topology/fat_tree.hpp"
#include "traffic/generator.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace score::bench {

inline bool paper_scale() {
  const char* env = std::getenv("SCORE_BENCH_SCALE");
  return env != nullptr && std::string(env) == "paper";
}

inline topo::CanonicalTreeConfig canonical_config() {
  if (paper_scale()) return topo::CanonicalTreeConfig::paper_scale();
  topo::CanonicalTreeConfig cfg;  // 32 racks x 5 hosts = 160 hosts
  cfg.racks = 32;
  cfg.hosts_per_rack = 5;
  cfg.racks_per_pod = 4;
  cfg.cores = 4;
  return cfg;
}

inline topo::FatTreeConfig fattree_config() {
  if (paper_scale()) return topo::FatTreeConfig::paper_scale();
  return topo::FatTreeConfig{.k = 8};  // 128 hosts
}

inline core::ServerCapacity server_capacity() {
  core::ServerCapacity cap;
  cap.vm_slots = paper_scale() ? 16 : 4;
  cap.ram_mb = static_cast<double>(cap.vm_slots) * 256.0;
  cap.cpu_cores = static_cast<double>(cap.vm_slots);
  return cap;
}

/// Fleet sized at ~50% slot occupancy so migrations have room to move.
inline std::size_t fleet_size(const topo::Topology& topology) {
  return topology.num_hosts() * server_capacity().vm_slots / 2;
}

struct Scenario {
  std::unique_ptr<topo::Topology> topology;
  std::unique_ptr<core::CostModel> model;
  traffic::TrafficMatrix tm{1};
  std::unique_ptr<core::Allocation> alloc;
};

inline Scenario make_scenario(bool fat_tree, traffic::Intensity intensity,
                              std::uint64_t seed = 42) {
  Scenario s;
  if (fat_tree) {
    s.topology = std::make_unique<topo::FatTree>(fattree_config());
  } else {
    s.topology = std::make_unique<topo::CanonicalTree>(canonical_config());
  }
  s.model = std::make_unique<core::CostModel>(*s.topology,
                                              core::LinkWeights::exponential(3));
  traffic::GeneratorConfig gen;
  gen.num_vms = fleet_size(*s.topology);
  gen.seed = seed;
  // Rack-scale services with substantial cross-service chatter: even an
  // optimal allocation keeps paying for inter-rack traffic, as in the
  // paper's ToR-level TMs (Fig. 3a) where hotspots persist at the optimum.
  gen.mean_service_size = 24;
  gen.intra_service_degree = 4.0;
  gen.cross_service_prob = 0.3;
  s.tm = traffic::generate_traffic(gen, intensity);

  // Per-VM NIC demand = the VM's aggregate traffic rate (clamped to half the
  // host NIC). At sparse intensity this never binds; at x10/x50 it constrains
  // colocation (§V-C bandwidth threshold), reproducing the paper's growing
  // deviation from the GA optimum as the TM densifies.
  const core::ServerCapacity cap = server_capacity();
  std::vector<core::VmSpec> specs(gen.num_vms);
  for (traffic::VmId u = 0; u < gen.num_vms; ++u) {
    double rate = 0.0;
    for (const auto& [v, r] : s.tm.neighbors(u)) {
      (void)v;
      rate += r;
    }
    specs[u].net_bps = std::min(rate, 0.5 * cap.net_bps);
  }

  util::Rng rng(seed + 1);
  s.alloc = std::make_unique<core::Allocation>(baselines::make_allocation(
      *s.topology, cap, specs, baselines::PlacementStrategy::kRandom, rng));
  return s;
}

inline baselines::GaConfig ga_config() {
  baselines::GaConfig cfg;
  cfg.polish = baselines::GaPolish::kFinal;  // see GaPolish docs
  if (paper_scale()) {
    cfg.population = 1000;  // paper §VI-A
    cfg.max_generations = 2000;
    cfg.stop_window = 10;
  } else {
    cfg.population = 96;
    cfg.max_generations = 400;
    cfg.stop_window = 20;
  }
  return cfg;
}

}  // namespace score::bench
