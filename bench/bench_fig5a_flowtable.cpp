// Fig. 5a — Flow-table stress test with google-benchmark.
//
// The paper times add / lookup / delete over tables of up to one million
// simultaneous flows for two populations:
//   Type 1: every source IP unique (10^6 singleton index buckets),
//   Type 2: groups of 1000 flows share a source IP (10^3 buckets of 10^3).
// Paper claims to reproduce: Type 2 operations are cheaper than Type 1, and
// at a realistic production load (~100 concurrent flows) every operation
// stays far below 100 ms.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "hypervisor/flow_table.hpp"

namespace {

using score::hypervisor::FlowKey;
using score::hypervisor::FlowTable;

// Deterministic key for flow i under the given population type.
FlowKey make_key(std::int64_t i, bool type2) {
  FlowKey k;
  if (type2) {
    k.src_ip = static_cast<std::uint32_t>(i / 1000);  // 1000 flows per IP
    k.src_port = static_cast<std::uint16_t>(i % 1000);
    k.dst_port = static_cast<std::uint16_t>((i / 1000) % 65521);
  } else {
    k.src_ip = static_cast<std::uint32_t>(i);  // all-unique sources
    k.src_port = 7;
    k.dst_port = 80;
  }
  k.dst_ip = 0xC0A80001;  // common sink, as in the testbed's iperf server
  return k;
}

void add_flows(FlowTable& table, std::int64_t n, bool type2) {
  for (std::int64_t i = 0; i < n; ++i) {
    table.update(make_key(i, type2), 1500, 1, 0.0);
  }
}

void BM_Add(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const bool type2 = state.range(1) != 0;
  for (auto _ : state) {
    FlowTable table;
    add_flows(table, n, type2);
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_Lookup(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const bool type2 = state.range(1) != 0;
  FlowTable table;
  add_flows(table, n, type2);
  for (auto _ : state) {
    for (std::int64_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(table.lookup(make_key(i, type2)));
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_Delete(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const bool type2 = state.range(1) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    FlowTable table;
    add_flows(table, n, type2);
    state.ResumeTiming();
    for (std::int64_t i = 0; i < n; ++i) table.remove(make_key(i, type2));
    benchmark::DoNotOptimize(table.empty());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_LookupByIp(benchmark::State& state) {
  // Retrieval of a subset of flows by IP address (§V-B.1), where the two
  // populations differ most: Type 1 returns 1 flow, Type 2 returns 1000.
  const std::int64_t n = state.range(0);
  const bool type2 = state.range(1) != 0;
  FlowTable table;
  add_flows(table, n, type2);
  const auto distinct_ips =
      static_cast<std::uint32_t>(std::max<std::int64_t>(1, type2 ? n / 1000 : n));
  std::uint32_t ip = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.flows_for_ip(ip));
    ip = (ip + 1) % distinct_ips;
  }
}

void SizeSweep(benchmark::internal::Benchmark* b) {
  for (std::int64_t type2 : {0, 1}) {
    for (std::int64_t n : {100, 10'000, 1'000'000}) {
      b->Args({n, type2});
    }
  }
}

}  // namespace

BENCHMARK(BM_Add)->Apply(SizeSweep)->Unit(benchmark::kMillisecond)->MinTime(0.05);
BENCHMARK(BM_Lookup)->Apply(SizeSweep)->Unit(benchmark::kMillisecond)->MinTime(0.05);
BENCHMARK(BM_Delete)->Apply(SizeSweep)->Unit(benchmark::kMillisecond)->MinTime(0.05);
BENCHMARK(BM_LookupByIp)
    ->Apply(SizeSweep)
    ->Unit(benchmark::kMicrosecond)
    ->MinTime(0.05);

BENCHMARK_MAIN();
