// Ablation A4 — VM stability under traffic churn (paper §VI-B).
//
// The paper argues S-CORE avoids oscillation because (1) it averages pairwise
// loads over a measurement window and (2) DC hotspots are fixed-set and
// slowly changing. This ablation quantifies that: after converging on epoch
// 0, we replay E epochs of churned traffic and count re-migrations per epoch
// when decisions are driven by (a) the instantaneous epoch matrix vs (b) a
// sliding window average of the last W epochs.
#include <iostream>

#include "bench_common.hpp"
#include "core/token_policy.hpp"
#include "traffic/dynamics.hpp"

int main() {
  using namespace score;

  const std::size_t epochs = 10;
  const std::size_t window = 4;

  util::CsvWriter csv;
  std::cout << "# Ablation A4: re-migrations per epoch under churn\n";
  csv.header({"mode", "epoch", "migrations", "cost_after", "elephant_overlap"});

  for (const std::string mode : {"instantaneous", "window-average"}) {
    traffic::GeneratorConfig gen;
    gen.num_vms = bench::fleet_size(
        *bench::make_scenario(false, traffic::Intensity::kSparse).topology);
    gen.mean_service_size = 24;
    gen.intra_service_degree = 4.0;
    gen.cross_service_prob = 0.3;
    traffic::DynamicsConfig dcfg;
    dcfg.mice_churn = 0.5;
    traffic::TrafficDynamics dyn(gen, dcfg);

    auto s = bench::make_scenario(false, traffic::Intensity::kSparse);
    core::MigrationEngine engine(*s.model);

    // Converge on epoch 0.
    {
      core::HighestLevelFirstPolicy hlf;
      driver::ScoreSimulation sim(engine, hlf, *s.alloc, dyn.epoch(0));
      (void)sim.run();
    }

    for (std::size_t e = 1; e <= epochs; ++e) {
      const traffic::TrafficMatrix* decision_tm = nullptr;
      traffic::TrafficMatrix averaged(gen.num_vms);
      if (mode == "window-average") {
        std::vector<const traffic::TrafficMatrix*> recent;
        for (std::size_t k = e >= window ? e - window + 1 : 0; k <= e; ++k) {
          recent.push_back(&dyn.epoch(k));
        }
        averaged = traffic::average_tms(recent);
        decision_tm = &averaged;
      } else {
        decision_tm = &dyn.epoch(e);
      }

      std::size_t migrations = 0;
      for (traffic::VmId u = 0; u < gen.num_vms; ++u) {
        if (engine.evaluate_and_apply(*s.alloc, *decision_tm, u).migrate) {
          ++migrations;
        }
      }
      csv.row(mode, e, migrations, s.model->total_cost(*s.alloc, dyn.epoch(e)),
              dyn.elephant_overlap(e - 1, e));
    }
  }
  return 0;
}
