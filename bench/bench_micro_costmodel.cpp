// Micro-benchmarks (google-benchmark): cost-model and decision-path
// throughput, the quantities that bound S-CORE's per-token-hold work in
// dom0, plus GA generation cost for the centralized normaliser.
#include <benchmark/benchmark.h>

#include "baselines/ga_optimizer.hpp"
#include "baselines/placement.hpp"
#include "core/cost_model.hpp"
#include "core/migration_engine.hpp"
#include "topology/canonical_tree.hpp"
#include "traffic/generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace score;

struct Fixture {
  topo::CanonicalTree topo;
  core::CostModel model;
  traffic::TrafficMatrix tm;
  core::Allocation alloc;

  explicit Fixture(std::size_t num_vms)
      : topo(make_topo_config()),
        model(topo, core::LinkWeights::exponential(3)),
        tm(make_tm(num_vms)),
        alloc(make_alloc(topo, num_vms)) {}

  static topo::CanonicalTreeConfig make_topo_config() {
    topo::CanonicalTreeConfig cfg;
    cfg.racks = 64;
    cfg.hosts_per_rack = 10;
    cfg.racks_per_pod = 8;
    cfg.cores = 4;
    return cfg;
  }

  static traffic::TrafficMatrix make_tm(std::size_t num_vms) {
    traffic::GeneratorConfig gen;
    gen.num_vms = num_vms;
    return traffic::generate_traffic(gen);
  }

  static core::Allocation make_alloc(const topo::Topology& topo,
                                     std::size_t num_vms) {
    util::Rng rng(1);
    core::ServerCapacity cap;
    cap.vm_slots = 8;
    cap.ram_mb = 8 * 256.0;
    cap.cpu_cores = 8.0;
    return baselines::make_allocation(topo, cap, num_vms, core::VmSpec{},
                                      baselines::PlacementStrategy::kRandom, rng);
  }
};

void BM_TotalCost(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model.total_cost(f.alloc, f.tm));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.tm.num_pairs()));
}

void BM_MigrationDelta(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  core::VmId vm = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.model.migration_delta(f.alloc, f.tm, vm, (vm * 37) % 640));
    vm = (vm + 1) % static_cast<core::VmId>(f.tm.num_vms());
  }
}

void BM_EngineEvaluate(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  core::MigrationEngine engine(f.model);
  core::VmId vm = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.evaluate(f.alloc, f.tm, vm));
    vm = (vm + 1) % static_cast<core::VmId>(f.tm.num_vms());
  }
}

void BM_GaGeneration(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  baselines::GaConfig cfg;
  cfg.population = 24;
  cfg.max_generations = 1;  // time a single generation
  cfg.stop_window = 1000;
  baselines::GaOptimizer ga(f.model, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ga.optimize(f.alloc, f.tm));
  }
}

}  // namespace

BENCHMARK(BM_TotalCost)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond)
    ->MinTime(0.05);
BENCHMARK(BM_MigrationDelta)->Arg(256)->Arg(1024)->MinTime(0.05);
BENCHMARK(BM_EngineEvaluate)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond)
    ->MinTime(0.05);
BENCHMARK(BM_GaGeneration)->Arg(256)->Unit(benchmark::kMillisecond)->MinTime(0.05);

BENCHMARK_MAIN();
