// Ablation A2 — migration-cost c_m sweep (paper §VI: "since a DC operator
// may wish to limit the number of VM migrations over a temporal interval, we
// have also experimented with different cm values").
//
// Sweeps c_m from 0 to a large multiple of the typical pairwise cost and
// reports the migration count / cost-reduction trade-off: higher c_m
// suppresses migrations at the price of a worse final allocation.
#include <iostream>

#include "bench_common.hpp"
#include "core/token_policy.hpp"

int main() {
  using namespace score;

  // Calibrate the sweep against the typical per-pair cost in this workload.
  auto probe = bench::make_scenario(false, traffic::Intensity::kMedium);
  const double mean_rate =
      probe.tm.total_load() / static_cast<double>(probe.tm.num_pairs());
  const double unit = probe.model->pair_cost(mean_rate, 3);

  util::CsvWriter csv;
  std::cout << "# Ablation A2: migration-cost c_m sweep (unit = mean level-3 "
               "pair cost = "
            << unit << ")\n";
  csv.header({"cm_over_unit", "migrations", "cost_reduction", "final_cost",
              "iterations_run"});

  for (double factor : {0.0, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 20.0}) {
    auto s = bench::make_scenario(false, traffic::Intensity::kMedium);
    core::EngineConfig ecfg;
    ecfg.migration_cost = factor * unit;
    core::MigrationEngine engine(*s.model, ecfg);
    core::HighestLevelFirstPolicy hlf;
    driver::ScoreSimulation sim(engine, hlf, *s.alloc, s.tm);
    const auto res = sim.run();
    csv.row(factor, res.total_migrations, res.reduction(), res.final_cost,
            res.iterations.size());
  }
  return 0;
}
