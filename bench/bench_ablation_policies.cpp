// Ablation A3 — token-passing policies.
//
// Compares the paper's Round-Robin and Highest-Level-First against the two
// extension policies from the companion technical report (random permutation
// and highest-traffic-first): cost after each iteration, total migrations and
// time to stability. HLF should harvest cost reduction fastest (paper §VI-B).
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "core/token_policy.hpp"

int main() {
  using namespace score;

  util::CsvWriter csv;
  std::cout << "# Ablation A3: token policies (canonical tree, medium TM)\n";
  csv.header({"policy", "iteration", "cost_ratio_vs_initial", "migrated_ratio"});

  std::ostringstream summary_buf;
  util::CsvWriter summary(summary_buf);
  summary.header({"policy", "final_reduction", "migrations",
                  "iterations_to_stable", "sim_time_s"});

  for (const std::string name :
       {"round-robin", "highest-level-first", "random", "highest-traffic-first"}) {
    auto s = bench::make_scenario(false, traffic::Intensity::kMedium);
    core::MigrationEngine engine(*s.model);
    auto policy = core::make_policy(name, /*seed=*/7);
    driver::SimConfig cfg;
    cfg.iterations = 10;
    driver::ScoreSimulation sim(engine, *policy, *s.alloc, s.tm);
    const auto res = sim.run(cfg);

    for (std::size_t i = 0; i < res.iterations.size(); ++i) {
      csv.row(name, i + 1, res.iterations[i].cost_at_end / res.initial_cost,
              res.iterations[i].migrated_ratio);
    }
    summary.row(name, res.reduction(), res.total_migrations,
                res.iterations.size(), res.duration_s);
  }
  std::cout << "\n# summary\n" << summary_buf.str();
  return 0;
}
