// Fig. 3g-i — cost-ratio-vs-time curves on the fat-tree (see
// bench_fig3_costratio.hpp for the shared driver).
#include "bench_fig3_costratio.hpp"

int main() { return score::bench::run_fig3_costratio(/*fat_tree=*/true); }
