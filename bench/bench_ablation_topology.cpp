// Ablation A7 — topology neutrality (paper §VIII: S-CORE "is equally
// applicable to diverse DC network architectures").
//
// Runs the identical workload/policy on the three supported architectures
// (canonical tree, fat-tree, leaf-spine) and reports cost reduction,
// convergence and top-layer relief. The two-tier leaf-spine uses two-level
// exponential weights; the trees use the paper's three-level weights.
#include <iostream>

#include "bench_common.hpp"
#include "core/token_policy.hpp"
#include "topology/leaf_spine.hpp"

int main() {
  using namespace score;

  util::CsvWriter csv;
  std::cout << "# Ablation A7: S-CORE across topologies (same VM count, "
               "medium TM)\n";
  csv.header({"topology", "hosts", "initial_cost", "final_cost",
              "cost_reduction", "migrations", "iterations",
              "max_top_layer_util_before", "max_top_layer_util_after"});

  struct Arch {
    std::string name;
    std::unique_ptr<topo::Topology> topo;
    core::LinkWeights weights;
  };
  std::vector<Arch> archs;
  archs.push_back({"canonical-tree",
                   std::make_unique<topo::CanonicalTree>(bench::canonical_config()),
                   core::LinkWeights::exponential(3)});
  archs.push_back({"fat-tree",
                   std::make_unique<topo::FatTree>(bench::fattree_config()),
                   core::LinkWeights::exponential(3)});
  topo::LeafSpineConfig ls;
  ls.leaves = 32;
  ls.hosts_per_leaf = 5;
  ls.spines = 4;
  archs.push_back({"leaf-spine", std::make_unique<topo::LeafSpine>(ls),
                   core::LinkWeights::exponential(2)});

  const std::size_t num_vms = 320;
  for (auto& arch : archs) {
    core::CostModel model(*arch.topo, arch.weights);

    traffic::GeneratorConfig gen;
    gen.num_vms = num_vms;
    gen.mean_service_size = 24;
    gen.cross_service_prob = 0.3;
    auto tm = traffic::generate_traffic(gen, traffic::Intensity::kMedium);

    util::Rng rng(43);
    core::Allocation alloc = baselines::make_allocation(
        *arch.topo, bench::server_capacity(), num_vms, core::VmSpec{},
        baselines::PlacementStrategy::kRandom, rng);

    const int top = arch.topo->max_level();
    const double util_before =
        core::link_loads_for(*arch.topo, alloc, tm).max_utilization(top);

    core::MigrationEngine engine(model);
    core::HighestLevelFirstPolicy hlf;
    driver::ScoreSimulation sim(engine, hlf, alloc, tm);
    const auto res = sim.run();

    const double util_after =
        core::link_loads_for(*arch.topo, alloc, tm).max_utilization(top);
    csv.row(arch.name, arch.topo->num_hosts(), res.initial_cost, res.final_cost,
            res.reduction(), res.total_migrations, res.iterations.size(),
            util_before, util_after);
  }
  return 0;
}
