// Fig. 3d-f — cost-ratio-vs-time curves on the canonical tree (see
// bench_fig3_costratio.hpp for the shared driver).
#include "bench_fig3_costratio.hpp"

int main() { return score::bench::run_fig3_costratio(/*fat_tree=*/false); }
