// Shared driver for Fig. 3d-f (canonical tree) and Fig. 3g-i (fat-tree k=16):
// communication-cost ratio over the GA-approximated optimum as a function of
// simulated time, for both token policies at three traffic intensities.
#pragma once

#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "core/token_policy.hpp"

namespace score::bench {

inline int run_fig3_costratio(bool fat_tree) {
  util::CsvWriter csv;
  std::cout << "# Fig. 3" << (fat_tree ? "g-i (fat-tree)" : "d-f (canonical tree)")
            << ": cost ratio over GA-optimal vs simulated time\n";
  csv.header({"intensity", "policy", "time_s", "cost_ratio"});

  // Final ratios are printed as one block after all series (keeps the CSV
  // streams from interleaving when stdout/stderr are merged).
  std::ostringstream summary_buf;
  util::CsvWriter summary(summary_buf);
  summary.header({"intensity", "policy", "initial_ratio", "final_ratio",
                  "migrations", "ga_cost"});

  for (traffic::Intensity intensity :
       {traffic::Intensity::kSparse, traffic::Intensity::kMedium,
        traffic::Intensity::kDense}) {
    // Same base TM scaled x1/x10/x50 (the paper's methodology); density
    // effects come from the bandwidth constraint binding at higher scales.
    const std::uint64_t seed = 42;

    // GA normaliser: one search per intensity, from the same initial state.
    auto ga_scenario = make_scenario(fat_tree, intensity, seed);
    baselines::GaOptimizer ga(*ga_scenario.model, ga_config());
    const auto ga_res = ga.optimize(*ga_scenario.alloc, ga_scenario.tm);
    const double opt = ga_res.best_cost;

    for (const std::string policy_name : {"round-robin", "highest-level-first"}) {
      auto s = make_scenario(fat_tree, intensity, seed);
      core::MigrationEngine engine(*s.model);
      auto policy = core::make_policy(policy_name);
      driver::SimConfig cfg;
      cfg.iterations = 8;
      driver::ScoreSimulation sim(engine, *policy, *s.alloc, s.tm);
      const driver::SimResult res = sim.run(cfg);

      // Thin the series to ~80 points for readable output.
      const std::size_t stride = std::max<std::size_t>(1, res.series.size() / 80);
      for (std::size_t i = 0; i < res.series.size(); i += stride) {
        csv.row(traffic::intensity_name(intensity), policy_name,
                res.series[i].time_s, res.series[i].cost / opt);
      }
      csv.row(traffic::intensity_name(intensity), policy_name,
              res.series.back().time_s, res.series.back().cost / opt);
      summary.row(traffic::intensity_name(intensity), policy_name,
                  res.initial_cost / opt, res.final_cost / opt,
                  res.total_migrations, opt);
    }
  }
  std::cout << "\n# summary: final ratios\n" << summary_buf.str();
  return 0;
}

}  // namespace score::bench
