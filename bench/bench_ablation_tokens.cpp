// Ablation A5 — multi-token scaling (extension beyond the paper).
//
// The paper's single token serialises |V| holds per iteration; with disjoint
// VM partitions, k concurrent tokens preserve the Theorem-1 monotonicity
// (deltas are evaluated against the live allocation) while cutting the
// simulated convergence time ~k-fold. Reports time-to-stable, migrations and
// final quality per token count.
#include <iostream>

#include "bench_common.hpp"
#include "core/multi_token.hpp"

int main() {
  using namespace score;

  util::CsvWriter csv;
  std::cout << "# Ablation A5: concurrent tokens (canonical tree, medium TM)\n";
  csv.header({"tokens", "sim_time_to_stable_s", "passes", "migrations",
              "cost_reduction"});

  for (std::size_t tokens : {1, 2, 4, 8, 16}) {
    auto s = bench::make_scenario(false, traffic::Intensity::kMedium);
    core::MigrationEngine engine(*s.model);
    core::MultiTokenConfig cfg;
    cfg.tokens = tokens;
    cfg.iterations = 12;
    core::MultiTokenSimulation sim(engine, *s.alloc, s.tm);
    const auto res = sim.run(cfg);
    csv.row(tokens, res.duration_s, res.iterations.size(),
            res.total_migrations, res.reduction());
  }
  return 0;
}
