// Ablation A5 — multi-token scaling (extension beyond the paper).
//
// The paper's single token serialises |V| holds per iteration; with disjoint
// VM partitions, k concurrent tokens cut the *simulated* convergence time
// ~k-fold (pass end = max over per-token busy-until times), and since the
// phased driver runs shard walks on real threads, *wall-clock* also scales
// with the execution policy. Reports per token count: simulated
// time-to-stable, passes, migrations, final quality, plus wall-clock under
// seq and par(hardware) — the full tokens × threads grid lives in
// bench_runner's ablation-tokens-threads suite.
#include <iostream>

#include "bench_common.hpp"
#include "driver/multi_token.hpp"
#include "util/exec_policy.hpp"

int main() {
  using namespace score;

  util::CsvWriter csv;
  std::cout << "# Ablation A5: concurrent tokens (canonical tree, medium TM)\n";
  csv.header({"tokens", "sim_time_to_stable_s", "passes", "migrations",
              "cost_reduction", "wall_seq_s", "wall_par_s"});

  for (std::size_t tokens : {1, 2, 4, 8, 16}) {
    driver::SimResult res;
    double wall_s[2] = {0.0, 0.0};
    const util::ExecPolicy policies[2] = {util::ExecPolicy::seq(),
                                          util::ExecPolicy::par()};
    for (int p = 0; p < 2; ++p) {
      auto s = bench::make_scenario(false, traffic::Intensity::kMedium);
      core::MigrationEngine engine(*s.model);
      driver::MultiTokenConfig cfg;
      cfg.tokens = tokens;
      cfg.iterations = 12;
      cfg.policy = policies[p];
      driver::MultiTokenSimulation sim(engine, *s.alloc, s.tm);
      bench::Stopwatch sw;
      res = sim.run(cfg);  // identical results for both policies
      wall_s[p] = sw.elapsed_s();
    }
    csv.row(tokens, res.duration_s, res.iterations.size(),
            res.total_migrations, res.reduction(), wall_s[0], wall_s[1]);
  }
  return 0;
}
