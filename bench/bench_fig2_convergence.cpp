// Fig. 2 — Ratio of migrated VMs in 5 consecutive token-passing iterations,
// Round-Robin vs Highest-Level-First, under the base (sparse) traffic matrix
// on the canonical tree.
//
// Paper claim to reproduce: the migrated ratio plummets after the second
// iteration — S-CORE converges to a stable VM distribution within two
// iterations and very few VMs migrate afterwards.
#include <iostream>

#include "bench_common.hpp"
#include "core/token_policy.hpp"

int main() {
  using namespace score;

  util::CsvWriter csv;
  std::cout << "# Fig. 2: ratio of migrated VMs per token-passing iteration\n";
  csv.header({"policy", "iteration", "migrated_ratio", "migrations", "holds"});

  for (const std::string policy_name : {"round-robin", "highest-level-first"}) {
    auto s = bench::make_scenario(/*fat_tree=*/false, traffic::Intensity::kSparse);
    core::MigrationEngine engine(*s.model);
    auto policy = core::make_policy(policy_name);

    driver::SimConfig cfg;
    cfg.iterations = 5;
    cfg.stop_when_stable = false;
    driver::ScoreSimulation sim(engine, *policy, *s.alloc, s.tm);
    const driver::SimResult res = sim.run(cfg);

    for (std::size_t i = 0; i < res.iterations.size(); ++i) {
      csv.row(policy_name, i + 1, res.iterations[i].migrated_ratio,
              res.iterations[i].migrations, res.iterations[i].holds);
    }
  }
  return 0;
}
