// Control-plane overhead of the distributed protocol (paper §IV/§V-A).
//
// S-CORE's scalability argument rests on the control plane being cheap: one
// O(|V|)-sized token circulating serially, plus per-hold location and
// capacity probes bounded by the holder's neighbour count. This bench runs
// the full message-passing runtime at increasing fleet sizes and reports
// messages and bytes per iteration — the quantities that would hit a real
// DC's network.
#include <iostream>

#include "bench_common.hpp"
#include "hypervisor/distributed_runtime.hpp"

int main() {
  using namespace score;

  util::CsvWriter csv;
  std::cout << "# Control-plane overhead vs fleet size (1 iteration, RR)\n";
  csv.header({"vms", "token_msgs", "location_msgs", "capacity_msgs",
              "control_bytes", "token_bytes_each", "bytes_per_vm",
              "migrations", "cost_reduction"});

  for (std::size_t num_vms : {64, 128, 256, 512}) {
    topo::CanonicalTreeConfig tcfg = bench::canonical_config();
    topo::CanonicalTree topology(tcfg);
    core::CostModel model(topology, core::LinkWeights::exponential(3));

    traffic::GeneratorConfig gen;
    gen.num_vms = num_vms;
    gen.mean_service_size = 24;
    gen.cross_service_prob = 0.3;
    traffic::TrafficMatrix tm = traffic::generate_traffic(gen);

    util::Rng rng(1);
    core::ServerCapacity cap = bench::server_capacity();
    core::Allocation alloc = baselines::make_allocation(
        topology, cap, num_vms, core::VmSpec{},
        baselines::PlacementStrategy::kRandom, rng);

    hypervisor::RuntimeConfig rcfg;
    rcfg.iterations = 1;
    rcfg.stop_when_stable = false;
    hypervisor::DistributedScoreRuntime runtime(model, alloc, tm, rcfg);
    const auto res = runtime.run();

    csv.row(num_vms, res.token_messages, res.location_messages,
            res.capacity_messages, res.control_bytes, 4 + 5 * num_vms,
            res.control_bytes / num_vms, res.total_migrations, res.reduction());
  }
  return 0;
}
