// Fig. 3a-c — Sparse / medium (x10) / dense (x50) ToR-level traffic matrices.
//
// Emits the rack-by-rack heat-map data (normalised to [0, 1] as in the
// paper's colour scale) for each intensity, plus the structural summary the
// paper describes: the TM is sparse, only a handful of ToR pairs are
// hotspots, yet a significant traffic fraction crosses the upper layers.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace score;

  util::CsvWriter csv;
  std::cout << "# Fig. 3a-c: ToR-level traffic matrices (normalised, non-zero "
               "entries only)\n";
  csv.header({"intensity", "from_tor", "to_tor", "normalized_load"});

  for (traffic::Intensity intensity :
       {traffic::Intensity::kSparse, traffic::Intensity::kMedium,
        traffic::Intensity::kDense}) {
    auto s = bench::make_scenario(/*fat_tree=*/false, intensity);
    const auto matrix = core::tor_level_matrix(*s.topology, *s.alloc, s.tm);
    const double peak = core::tor_matrix_peak(matrix);
    for (std::size_t r = 0; r < matrix.size(); ++r) {
      for (std::size_t c = r + 1; c < matrix.size(); ++c) {
        if (matrix[r][c] > 0.0 && peak > 0.0) {
          csv.row(traffic::intensity_name(intensity), r, c, matrix[r][c] / peak);
        }
      }
    }
  }

  std::cout << "\n# structural summary\n";
  util::CsvWriter summary;
  summary.header({"intensity", "fill_fraction", "fill_above_5pct_peak",
                  "hotspot_pairs_above_half_peak", "total_load",
                  "top10pct_byte_share"});
  for (traffic::Intensity intensity :
       {traffic::Intensity::kSparse, traffic::Intensity::kMedium,
        traffic::Intensity::kDense}) {
    auto s = bench::make_scenario(/*fat_tree=*/false, intensity);
    const auto matrix = core::tor_level_matrix(*s.topology, *s.alloc, s.tm);
    const double peak = core::tor_matrix_peak(matrix);
    std::size_t hot = 0, visible = 0, offdiag = 0;
    for (std::size_t r = 0; r < matrix.size(); ++r) {
      for (std::size_t c = r + 1; c < matrix.size(); ++c) {
        ++offdiag;
        if (matrix[r][c] > 0.5 * peak) ++hot;
        if (matrix[r][c] > 0.05 * peak) ++visible;
      }
    }
    summary.row(traffic::intensity_name(intensity),
                core::tor_matrix_fill(matrix),
                static_cast<double>(visible) / static_cast<double>(offdiag), hot,
                s.tm.total_load(), traffic::top_pair_byte_share(s.tm, 0.10));
  }
  return 0;
}
