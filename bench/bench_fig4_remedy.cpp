// Fig. 4 — S-CORE vs Remedy head-to-head on the canonical tree.
//
//  (a) CDFs of link utilisation at the core and aggregation layers at stable
//      state: initial (traffic-agnostic random placement), after Remedy, and
//      after S-CORE. Paper claim: S-CORE greatly reduces core/aggregation
//      utilisation; Remedy only marginally alleviates it.
//  (b) Communication-cost ratio over time: S-CORE improves ~40%, Remedy ~10%
//      (sparse TM — where Remedy performs best).
//
// For a fair comparison, S-CORE's migration cost c_m is derived from
// Remedy's dirty-rate byte model: the bytes a migration moves, amortised
// over the measurement window, priced across the full topology (paper:
// "we have used Remedy's migration cost model ... and set S-CORE's cm
// accordingly").
#include <iostream>

#include "baselines/remedy.hpp"
#include "bench_common.hpp"
#include "core/token_policy.hpp"

int main() {
  using namespace score;

  // The paper runs this comparison under its sparse TM, whose absolute rates
  // are high enough to congest links. Our generator's medium (x10) intensity
  // is the operating point with the same property (the base TM leaves every
  // link below 25% utilisation, where neither system has anything to do).
  auto s_score = bench::make_scenario(false, traffic::Intensity::kMedium);
  auto s_remedy = bench::make_scenario(false, traffic::Intensity::kMedium);
  auto s_initial = bench::make_scenario(false, traffic::Intensity::kMedium);

  // ---- S-CORE with Remedy-derived c_m --------------------------------------
  baselines::RemedyConfig rcfg;
  rcfg.congestion_threshold = 0.25;
  rcfg.rounds = 30;
  rcfg.max_migrations_per_round = 8;
  baselines::Remedy remedy(*s_remedy.model, rcfg);

  // c_m: migrated bytes per Remedy's model, amortised over a 600 s
  // measurement window and priced as level-3 traffic.
  const double migrated_bytes =
      remedy.estimate_migrated_mb(core::VmSpec{}.ram_mb) * 1e6;
  const double window_s = 600.0;
  core::EngineConfig ecfg;
  ecfg.migration_cost =
      2.0 * (migrated_bytes / window_s) * s_score.model->weights().prefix(3);

  core::MigrationEngine engine(*s_score.model, ecfg);
  core::HighestLevelFirstPolicy hlf;
  driver::SimConfig scfg;
  scfg.iterations = 8;
  driver::ScoreSimulation sim(engine, hlf, *s_score.alloc, s_score.tm);
  const driver::SimResult score_res = sim.run(scfg);

  const auto remedy_res = remedy.run(*s_remedy.alloc, s_remedy.tm);

  // ---- Fig. 4a: utilisation CDFs -------------------------------------------
  util::CsvWriter csv;
  std::cout << "# Fig. 4a: link utilisation CDF points per layer and system\n";
  csv.header({"system", "layer", "utilization", "cdf"});
  auto emit_cdf = [&csv](const std::string& system, const topo::Topology& topo,
                         const core::Allocation& alloc,
                         const traffic::TrafficMatrix& tm) {
    const auto loads = core::link_loads_for(topo, alloc, tm);
    for (int layer : {2, 3}) {
      auto utils = loads.utilizations_at_level(layer);
      const auto cdf = util::empirical_cdf(std::move(utils));
      const std::size_t stride = std::max<std::size_t>(1, cdf.size() / 40);
      for (std::size_t i = 0; i < cdf.size(); i += stride) {
        csv.row(system, layer == 3 ? "core" : "aggregation", cdf[i].first,
                cdf[i].second);
      }
    }
  };
  emit_cdf("initial", *s_initial.topology, *s_initial.alloc, s_initial.tm);
  emit_cdf("remedy", *s_remedy.topology, *s_remedy.alloc, s_remedy.tm);
  emit_cdf("s-core", *s_score.topology, *s_score.alloc, s_score.tm);

  // ---- Fig. 4b: cost-ratio series ------------------------------------------
  std::cout << "\n# Fig. 4b: communication cost ratio (cost / final S-CORE "
               "cost) over time\n";
  util::CsvWriter series;
  series.header({"system", "time_s", "cost_ratio"});
  const double norm = score_res.final_cost > 0 ? score_res.final_cost : 1.0;
  const std::size_t stride =
      std::max<std::size_t>(1, score_res.series.size() / 60);
  for (std::size_t i = 0; i < score_res.series.size(); i += stride) {
    series.row("s-core", score_res.series[i].time_s,
               score_res.series[i].cost / norm);
  }
  for (const auto& pt : remedy_res.series) {
    series.row("remedy", pt.time_s, pt.cost / norm);
  }

  std::cout << "\n# summary\n";
  util::CsvWriter summary;
  summary.header({"system", "initial_cost", "final_cost", "reduction",
                  "migrations"});
  summary.row("s-core", score_res.initial_cost, score_res.final_cost,
              score_res.reduction(), score_res.total_migrations);
  const double remedy_reduction =
      remedy_res.initial_cost > 0
          ? 1.0 - remedy_res.final_cost / remedy_res.initial_cost
          : 0.0;
  summary.row("remedy", remedy_res.initial_cost, remedy_res.final_cost,
              remedy_reduction, remedy_res.total_migrations);
  return 0;
}
