// Ablation A6 — end-to-end throughput: flow completion times before/after
// S-CORE (extension beyond the paper's figures, but the point of its §I
// motivation: congestion from traffic-agnostic placement throttles flows).
//
// Takes the elephant pairs of the medium-intensity workload, materialises
// each as a finite flow (60 s worth of its rate), and runs the max-min fair
// flow-level simulator on the allocation before and after S-CORE. Reports
// FCT mean/percentiles and the slowest flow.
#include <iostream>

#include "bench_common.hpp"
#include "core/token_policy.hpp"
#include "sim/flow_sim.hpp"

int main() {
  using namespace score;

  auto s = bench::make_scenario(false, traffic::Intensity::kMedium);
  sim::FlowLevelSimulator flow_sim(*s.topology);

  // Elephants: top decile of pair rates.
  auto pairs = s.tm.pairs();
  std::vector<double> rates;
  for (const auto& [u, v, r] : pairs) {
    (void)u;
    (void)v;
    rates.push_back(r);
  }
  const double threshold = util::percentile(rates, 90.0);

  auto flows_for = [&](const core::Allocation& alloc) {
    std::vector<sim::FlowSpec> flows;
    for (const auto& [u, v, rate] : pairs) {
      if (rate < threshold) continue;
      sim::FlowSpec f;
      f.src = alloc.server_of(u);
      f.dst = alloc.server_of(v);
      f.size_bytes = rate * 60.0 / 8.0;  // 60 s of traffic
      f.ecmp_hash = (static_cast<std::uint64_t>(u) << 32) | v;
      flows.push_back(f);
    }
    return flows;
  };

  auto summarize = [&](const char* label,
                       const std::vector<sim::FlowOutcome>& outcomes) {
    std::vector<double> fct;
    for (const auto& o : outcomes) fct.push_back(o.finish_s);
    util::CsvWriter csv;
    csv.row(label, util::mean(fct), util::percentile(fct, 50),
            util::percentile(fct, 95), util::percentile(fct, 99),
            *std::max_element(fct.begin(), fct.end()), fct.size());
  };

  std::cout << "# Ablation A6: elephant flow completion times (60 s of load "
               "per flow)\n";
  util::CsvWriter header;
  header.header({"allocation", "fct_mean_s", "fct_p50_s", "fct_p95_s",
                 "fct_p99_s", "fct_max_s", "flows"});

  const auto before = flow_sim.run(flows_for(*s.alloc));
  summarize("before-s-core", before);

  core::MigrationEngine engine(*s.model);
  core::HighestLevelFirstPolicy hlf;
  driver::ScoreSimulation sim(engine, hlf, *s.alloc, s.tm);
  const auto res = sim.run();

  const auto after = flow_sim.run(flows_for(*s.alloc));
  summarize("after-s-core", after);

  std::cout << "# (cost reduction " << 100.0 * res.reduction() << "% via "
            << res.total_migrations << " migrations)\n";
  return 0;
}
