// Fig. 5b/c/d — Live-migration testbed quantities from the pre-copy model.
//
//  5b: probability distribution of migrated bytes per migration (paper:
//      flat and wide, mean ≈127 MB, σ ≈11 MB, all below 150 MB for 196 MB
//      guests; ≥100 measured migrations — we run 2000).
//  5c: total migration time vs background CBR load on the 1 Gb/s link
//      (paper: 2.94 s idle → 4.29 s at 10% → 9.34 s at 100%, sub-linear).
//  5d: VM downtime vs background load (paper: an order of magnitude smaller,
//      below 50 ms even at ~100% utilisation).
#include <iostream>

#include "hypervisor/live_migration.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

int main() {
  using namespace score;

  hypervisor::PreCopyMigrationModel model;
  util::Rng rng(2014);

  // ---- Fig. 5b: migrated-bytes distribution at idle network ----------------
  std::cout << "# Fig. 5b: distribution of migrated bytes per migration "
               "(2000 migrations, idle network)\n";
  util::Histogram hist(100.0, 160.0, 24);
  util::RunningStats bytes;
  for (int i = 0; i < 2000; ++i) {
    const auto out = model.simulate(rng, 0.0);
    hist.add(out.migrated_mb);
    bytes.add(out.migrated_mb);
  }
  util::CsvWriter csv;
  csv.header({"migrated_mb_bin_center", "probability"});
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    csv.row(hist.bin_center(b), hist.probability(b));
  }
  util::CsvWriter stats;
  std::cout << "# mean/stddev (paper: 127 MB / 11 MB)\n";
  stats.header({"mean_mb", "stddev_mb", "min_mb", "max_mb"});
  stats.row(bytes.mean(), bytes.stddev(), bytes.min(), bytes.max());

  // ---- Fig. 5c/5d: time and downtime vs background load --------------------
  std::cout << "\n# Fig. 5c: total migration time vs background load\n"
               "# Fig. 5d: downtime vs background load\n";
  util::CsvWriter sweep;
  sweep.header({"background_load", "total_time_mean_s", "total_time_p10_s",
                "total_time_p90_s", "downtime_mean_ms", "downtime_p10_ms",
                "downtime_p90_ms", "effective_bw_MBps"});
  for (int step = 0; step <= 10; ++step) {
    const double bg = step / 10.0;
    std::vector<double> times, downs;
    for (int i = 0; i < 400; ++i) {
      const auto out = model.simulate(rng, bg);
      times.push_back(out.total_time_s);
      downs.push_back(out.downtime_ms);
    }
    sweep.row(bg, util::mean(times), util::percentile(times, 10),
              util::percentile(times, 90), util::mean(downs),
              util::percentile(downs, 10), util::percentile(downs, 90),
              model.effective_bandwidth_MBps(bg));
  }
  return 0;
}
