// Ablation A1 — link-weight schemes (DESIGN.md §4).
//
// The paper uses exponentially growing weights c_i = e^{i-1} and notes the
// assignment is operator policy. This ablation compares exponential, linear
// and uniform (pure hop count) schemes on the same workload and reports the
// final cost reduction plus how much core-layer traffic each scheme leaves
// behind — exponential weights should localise core traffic most
// aggressively.
#include <iostream>

#include "bench_common.hpp"
#include "core/token_policy.hpp"

int main() {
  using namespace score;

  util::CsvWriter csv;
  std::cout << "# Ablation A1: link-weight schemes\n";
  csv.header({"weights", "cost_reduction", "migrations", "max_core_util_before",
              "max_core_util_after", "core_load_share_after"});

  for (const std::string scheme : {"exponential", "linear", "uniform"}) {
    auto s = bench::make_scenario(false, traffic::Intensity::kMedium);
    core::LinkWeights weights = scheme == "exponential"
                                    ? core::LinkWeights::exponential(3)
                                : scheme == "linear"
                                    ? core::LinkWeights::linear(3)
                                    : core::LinkWeights::uniform(3);
    core::CostModel model(*s.topology, weights);
    core::MigrationEngine engine(model);
    core::HighestLevelFirstPolicy hlf;

    const auto before = core::link_loads_for(*s.topology, *s.alloc, s.tm);
    const double core_before = before.max_utilization(3);

    driver::ScoreSimulation sim(engine, hlf, *s.alloc, s.tm);
    const auto res = sim.run();

    const auto after = core::link_loads_for(*s.topology, *s.alloc, s.tm);
    // Share of total offered link load sitting on core links.
    double core_load = 0.0, total_load = 0.0;
    for (const auto& link : s.topology->links()) {
      const double l = after.load_bps(link.id);
      total_load += l;
      if (link.level == 3) core_load += l;
    }
    csv.row(scheme, res.reduction(), res.total_migrations, core_before,
            after.max_utilization(3),
            total_load > 0 ? core_load / total_load : 0.0);
  }
  return 0;
}
